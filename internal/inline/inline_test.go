package inline

import (
	"testing"

	"cachemodel/internal/interp"
	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/trace"
)

// figure5 builds the example program of Figure 5:
//
//	DO I1 ... DO I2 ...
//	  A(I1,I2) = ...
//	  CALL f(X, A, B, B(I1,I2))
//	  CALL g(A(I1,I2), A(1,I2), B)
//
//	SUBROUTINE f(Y, C(10,10), D(400), S(10,10,*))
//	  DO I3 ... DO I4 ...: C(I3,I4-1) = Y + D(I3-1+20*(I4-1)); S(I3,I4,2) = ...
//	SUBROUTINE g(E(10,10), F(10), T(100,4))
//	  DO I3 ... DO I4 ...: E(I3,I4) = F(I4) - T(I3,I4)
//
// Loop bounds are chosen small enough that no access leaves its array.
func figure5() *ir.Program {
	p := ir.NewProgram("figure5")

	main := ir.NewSub("MAIN")
	X := main.Real8("X", 1)
	A := main.Real8("A", 10, 10)
	B := main.Real8("B", 20, 20)
	main.Do("I1", ir.Con(1), ir.Con(3)).
		Do("I2", ir.Con(1), ir.Con(3)).
		Assign("S0", ir.R(A, ir.Var("I1"), ir.Var("I2"))).
		Call("f", ir.ArgVar(X), ir.ArgVar(A), ir.ArgVar(B), ir.ArgElem(B, ir.Var("I1"), ir.Var("I2"))).
		Call("g", ir.ArgElem(A, ir.Var("I1"), ir.Var("I2")), ir.ArgElem(A, ir.Con(1), ir.Var("I2")), ir.ArgVar(B)).
		End().End()
	p.Add(main.Build())

	f := ir.NewSub("f")
	Y := f.Formal("Y", 8, 1)
	C := f.Formal("C", 8, 10, 10)
	D := f.Formal("D", 8, 400)
	S := f.Formal("S", 8, 10, 10, 0)
	f.Do("I3", ir.Con(1), ir.Con(3)).
		Do("I4", ir.Con(2), ir.Con(3)).
		Assign("F1", ir.R(C, ir.Var("I3"), ir.Var("I4").PlusConst(-1)),
			ir.R(Y, ir.Con(1)),
			ir.R(D, ir.Var("I3").PlusConst(-1).Plus(ir.Term(20, "I4")).PlusConst(-20))).
		Assign("F2", ir.R(S, ir.Var("I3"), ir.Var("I4"), ir.Con(2))).
		End().End()
	p.Add(f.Build())

	g := ir.NewSub("g")
	E := g.Formal("E", 8, 10, 10)
	F := g.Formal("F", 8, 10)
	T := g.Formal("T", 8, 100, 4)
	g.Do("I3", ir.Con(1), ir.Con(3)).
		Do("I4", ir.Con(1), ir.Con(3)).
		Assign("G1", ir.R(E, ir.Var("I3"), ir.Var("I4")),
			ir.R(F, ir.Var("I4")), ir.R(T, ir.Var("I3"), ir.Var("I4"))).
		End().End()
	p.Add(g.Build())
	p.SetMain("MAIN")
	return p
}

// TestFigure5Classification: all actuals but the last of each call are
// propagateable; the last actuals are renameable (B1/B2 in the paper).
func TestFigure5Classification(t *testing.T) {
	st := ClassifyProgram(figure5())
	// f: X→Y, A→C, B→D propagateable, B(I1,I2)→S renameable;
	// g: A(I1,I2)→E, A(1,I2)→F propagateable, B→T renameable.
	if st.PAble != 5 || st.RAble != 2 || st.NAble != 0 {
		t.Errorf("classification P/R/N = %d/%d/%d, want 5/2/0", st.PAble, st.RAble, st.NAble)
	}
	if st.Calls != 2 || st.Inlined != 2 {
		t.Errorf("calls = %d inlined = %d, want 2/2", st.Calls, st.Inlined)
	}
}

// TestFigure5RenamedAliases: the renamed arrays must alias the storage of
// B ("@B = @B1 = @B2").
func TestFigure5RenamedAliases(t *testing.T) {
	flat, _, err := Flatten(figure5(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	renamed, flatViews := 0, 0
	for _, a := range flat.Locals {
		if a.Alias == nil || a.Alias.Name != "B" {
			continue
		}
		if a.Dims[len(a.Dims)-1] == 0 && len(a.Dims) == 1 {
			flatViews++ // D(400)'s sequence-associated view of B
		} else {
			renamed++ // the paper's B1 (from S) and B2 (from T)
		}
	}
	if renamed != 2 {
		t.Errorf("renamed aliases of B = %d, want 2 (B1, B2)", renamed)
	}
	if flatViews != 1 {
		t.Errorf("flat views of B = %d, want 1 (for D(400))", flatViews)
	}
}

// TestInliningAddressExact: the flattened + normalised program must emit
// exactly the same byte-address stream as the original program executed
// with true call-by-reference semantics. This is the "abstract inlining is
// exact" property of §3.6.
func TestInliningAddressExact(t *testing.T) {
	p := figure5()
	flat, _, err := Flatten(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		t.Fatal(err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		t.Fatal(err)
	}
	var got []int64
	trace.Execute(np, func(r *ir.NRef, idx []int64) bool {
		got = append(got, r.AddressAt(idx))
		return true
	})
	want, err := interp.Addresses(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("address stream length %d, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("address %d: inlined %d, oracle %d", i, got[i], want[i])
		}
	}
}

// TestNestedCalls: calls inside callees (two levels) must inline
// transitively with exact addresses.
func TestNestedCalls(t *testing.T) {
	p := ir.NewProgram("nested")
	main := ir.NewSub("MAIN")
	A := main.Real8("A", 8, 8)
	main.Do("I", ir.Con(1), ir.Con(4)).
		Call("outer", ir.ArgVar(A)).
		End()
	p.Add(main.Build())

	outer := ir.NewSub("outer")
	P := outer.Formal("P", 8, 8, 8)
	outer.Do("J", ir.Con(1), ir.Con(4)).
		Assign("O1", ir.R(P, ir.Var("J"), ir.Con(1))).
		Call("inner", ir.ArgElem(P, ir.Con(1), ir.Var("J"))).
		End()
	p.Add(outer.Build())

	inner := ir.NewSub("inner")
	Q := inner.Formal("Q", 8, 8)
	inner.Do("K", ir.Con(1), ir.Con(4)).
		Assign("N1", nil, ir.R(Q, ir.Var("K"))).
		End()
	p.Add(inner.Build())
	p.SetMain("MAIN")

	flat, st, err := Flatten(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Inlining is syntactic: the call to outer appears once in MAIN and
	// the call to inner once inside outer's (single) inlined body.
	if st.Calls != 2 || st.Inlined != 2 {
		t.Errorf("calls/inlined = %d/%d, want 2/2", st.Calls, st.Inlined)
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		t.Fatal(err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		t.Fatal(err)
	}
	var got []int64
	trace.Execute(np, func(r *ir.NRef, idx []int64) bool {
		got = append(got, r.AddressAt(idx))
		return true
	})
	want, err := interp.Addresses(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("address stream length %d, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("address %d: inlined %d, oracle %d", i, got[i], want[i])
		}
	}
}

// TestSystemCallsDropped: calls to unknown subroutines are dropped and
// counted, not fatal.
func TestSystemCallsDropped(t *testing.T) {
	p := ir.NewProgram("sys")
	main := ir.NewSub("MAIN")
	A := main.Real8("A", 4)
	main.Do("I", ir.Con(1), ir.Con(4)).
		Assign("S1", ir.R(A, ir.Var("I"))).
		Call("WRITE").
		End()
	p.Add(main.Build())
	flat, st, err := Flatten(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.SystemCalls != 1 {
		t.Errorf("system calls = %d, want 1", st.SystemCalls)
	}
	if len(flat.Body) != 1 {
		t.Errorf("body nodes = %d, want 1 (call dropped)", len(flat.Body))
	}
}

// TestStackModelling: with ModelStack, each inlined call adds stack
// references at compile-time-known slots (Fig. 4).
func TestStackModelling(t *testing.T) {
	p := figure5()
	flat, _, err := Flatten(p, Options{ModelStack: true})
	if err != nil {
		t.Fatal(err)
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		t.Fatal(err)
	}
	stackRefs := 0
	for _, r := range np.Refs {
		if r.Array.Name == "__stack" {
			stackRefs++
			if !r.Subs[0].IsConst() {
				t.Errorf("stack access with non-constant slot: %v", r)
			}
		}
	}
	if stackRefs == 0 {
		t.Error("no stack accesses modelled")
	}
}

// TestNonAnalysableRejected: an assumed-size actual passed to a larger-rank
// formal with unknown leading sizes must make Flatten fail.
func TestNonAnalysableRejected(t *testing.T) {
	p := ir.NewProgram("bad")
	main := ir.NewSub("MAIN")
	A := main.Real8("A", 10, 0) // assumed-size
	main.Call("h", ir.ArgVar(A))
	p.Add(main.Build())
	h := ir.NewSub("h")
	h.Formal("P", 8, -1, 5) // unknown first dimension: N-able
	p.Add(h.Build())
	p.SetMain("MAIN")
	if _, _, err := Flatten(p, Options{}); err == nil {
		t.Fatal("expected non-analysable rejection")
	}
}
