// Package inline implements the abstract inlining of call statements
// (§3.6): every analysable call is replaced by the callee's body with
// formal parameters substituted by actual parameters, without generating
// compilable code — only the information needed for cache analysis
// (addresses, loop structure, guards) is preserved exactly.
//
// Actual parameters are classified as in Table 2:
//
//   - propagateable (P-able): the formal is a scalar or a one-dimensional
//     array, or actual and formal are arrays of the same rank with
//     matching sizes in all but the last dimension. References to the
//     formal become references to the actual's array, so reuse between
//     caller and callee is exposed to the analysis.
//   - renameable (R-able): the sizes of all but the last dimension of both
//     are known statically. References go to a fresh array AP' that
//     aliases the actual's storage (@AP' == @AP), preserving reuse within
//     the callee.
//   - non-analysable (N-able): anything else. A call with an N-able actual
//     cannot be inlined.
//
// Address exactness: every substitution preserves the byte address of each
// access (sequence association is modelled with flat aliases or subscript
// shifts), so the inlined program simulates and analyses identically to
// the original.
package inline

import (
	"fmt"

	"cachemodel/internal/ir"
)

// ArgClass is the Table 2 classification of one actual parameter.
type ArgClass int

// Classifications.
const (
	Propagateable ArgClass = iota
	Renameable
	NonAnalysable
)

func (c ArgClass) String() string {
	switch c {
	case Propagateable:
		return "P-able"
	case Renameable:
		return "R-able"
	case NonAnalysable:
		return "N-able"
	}
	return "?"
}

// Stats accumulates the Table 2 columns.
type Stats struct {
	PAble, RAble, NAble int // actual parameters by class
	Calls               int // total call statements seen
	Inlined             int // calls successfully inlined (A-able)
	SystemCalls         int // calls to unknown subroutines, dropped
}

// Analysable returns the number of analysable calls (Table 2 "A-able").
func (s Stats) Analysable() int { return s.Inlined }

// Options controls inlining.
type Options struct {
	// ModelStack, when true, inserts the run-time-stack accesses of Fig. 4
	// around every inlined call: stores of the return address and argument
	// addresses at compile-time-known stack slots.
	ModelStack bool
	// StackElems sizes the modelled stack (default 4096 elements).
	StackElems int64
	// MaxDepth bounds the call-chain depth (recursion guard, default 64).
	MaxDepth int
}

// ClassifyArg applies the Table 2 rules to one actual/formal pair.
func ClassifyArg(actual ir.Arg, formal *ir.Array) ArgClass {
	if isScalar(formal) || formal.Rank() == 1 {
		return Propagateable
	}
	if actual.Array.Rank() == formal.Rank() && dimsMatchButLast(actual.Array, formal) {
		return Propagateable
	}
	if dimsKnownButLast(actual.Array) && dimsKnownButLast(formal) {
		return Renameable
	}
	return NonAnalysable
}

func isScalar(a *ir.Array) bool {
	return a.Rank() == 1 && a.Dims[0] == 1
}

func dimsMatchButLast(a, b *ir.Array) bool {
	for i := 0; i < len(a.Dims)-1; i++ {
		if a.Dims[i] <= 0 || a.Dims[i] != b.Dims[i] {
			return false
		}
	}
	return true
}

func dimsKnownButLast(a *ir.Array) bool {
	for i := 0; i < len(a.Dims)-1; i++ {
		if a.Dims[i] <= 0 {
			return false
		}
	}
	return true
}

// Flatten abstractly inlines every analysable call reachable from the
// program's main subroutine and returns the resulting call-free
// subroutine together with the classification statistics. Calls to
// unknown subroutines (system calls) are dropped, as in the paper; calls
// with non-analysable actuals are rejected with an error, since the
// analysis cannot proceed soundly past them.
func Flatten(p *ir.Program, opt Options) (*ir.Subroutine, *Stats, error) {
	if opt.MaxDepth == 0 {
		opt.MaxDepth = 64
	}
	if opt.StackElems == 0 {
		opt.StackElems = 4096
	}
	in := &inliner{prog: p, opt: opt, stats: &Stats{},
		flatCache: map[*ir.Array]*ir.Array{}, localCache: map[*ir.Array]*ir.Array{}}
	if opt.ModelStack {
		in.stack = ir.NewArray("__stack", 8, opt.StackElems)
	}
	out := &ir.Subroutine{Name: p.Main.Name, Formals: p.Main.Formals, Locals: p.Main.Locals}
	if in.stack != nil {
		out.Locals = append(out.Locals, in.stack)
	}
	body, err := in.body(p.Main.Body, identitySubst(p.Main), 0, 0)
	if err != nil {
		return nil, nil, err
	}
	out.Body = body
	out.Locals = append(out.Locals, in.extraLocals...)
	return out, in.stats, nil
}

// ClassifyProgram classifies every call in the program without inlining —
// the pure Table 2 measurement.
func ClassifyProgram(p *ir.Program) Stats {
	st := Stats{}
	for _, name := range p.Order {
		sub := p.Subs[name]
		walkCalls(sub.Body, func(c *ir.Call) {
			st.Calls++
			callee, ok := p.Subs[c.Callee]
			if !ok {
				st.SystemCalls++
				return
			}
			analysable := true
			for i, arg := range c.Args {
				if i >= len(callee.Formals) {
					analysable = false
					break
				}
				switch ClassifyArg(arg, callee.Formals[i]) {
				case Propagateable:
					st.PAble++
				case Renameable:
					st.RAble++
				default:
					st.NAble++
					analysable = false
				}
			}
			if analysable {
				st.Inlined++
			}
		})
	}
	return st
}

func walkCalls(nodes []ir.Node, f func(*ir.Call)) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Loop:
			walkCalls(n.Body, f)
		case *ir.If:
			walkCalls(n.Body, f)
		case *ir.Call:
			f(n)
		}
	}
}

type inliner struct {
	prog        *ir.Program
	opt         Options
	stats       *Stats
	stack       *ir.Array
	extraLocals []*ir.Array
	flatCache   map[*ir.Array]*ir.Array
	localCache  map[*ir.Array]*ir.Array
	fresh       int
	renameCount int
}

// subst describes how to rewrite the body of one subroutine instance:
// formal arrays map to reference rewriters and loop variables map to
// fresh names.
type subst struct {
	arrays map[*ir.Array]refRewrite
	vars   map[string]string
}

// refRewrite turns a formal reference's subscripts (already var-renamed)
// into a concrete reference.
type refRewrite func(subs []ir.Expr, write bool) *ir.Ref

func identitySubst(sub *ir.Subroutine) *subst {
	return &subst{arrays: map[*ir.Array]refRewrite{}, vars: map[string]string{}}
}

// flatAlias returns the 1-D assumed-size view of an array, sharing its
// storage.
func (in *inliner) flatAlias(a *ir.Array) *ir.Array {
	if f, ok := in.flatCache[a]; ok {
		return f
	}
	f := ir.NewArray(a.Name+"$flat", a.ElemSize, 0)
	f.Alias = a
	in.flatCache[a] = f
	in.extraLocals = append(in.extraLocals, f)
	return f
}

// linearExpr returns the 0-based element offset expression of a subscripted
// actual within its array (affine in caller loop variables).
func linearExpr(a *ir.Array, subs []ir.Expr) ir.Expr {
	off := ir.Con(0)
	stride := int64(1)
	for i, s := range subs {
		off = off.Plus(s.PlusConst(-1).Scale(stride))
		if i < len(a.Dims)-1 {
			stride *= a.Dims[i]
		}
	}
	return off
}

// body rewrites a node list under the substitution, inlining calls.
func (in *inliner) body(nodes []ir.Node, s *subst, depth, bp int) ([]ir.Node, error) {
	var out []ir.Node
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Loop:
			nv := s.vars[n.Var]
			if nv == "" {
				nv = n.Var
			}
			l := &ir.Loop{Var: nv, Lo: in.expr(n.Lo, s), Hi: in.expr(n.Hi, s), Step: n.Step, Label: n.Label}
			kids, err := in.body(n.Body, s, depth, bp)
			if err != nil {
				return nil, err
			}
			l.Body = kids
			out = append(out, l)
		case *ir.If:
			f := &ir.If{}
			for _, c := range n.Conds {
				f.Conds = append(f.Conds, ir.Cond{LHS: in.expr(c.LHS, s), Op: c.Op, RHS: in.expr(c.RHS, s)})
			}
			kids, err := in.body(n.Body, s, depth, bp)
			if err != nil {
				return nil, err
			}
			f.Body = kids
			out = append(out, f)
		case *ir.Assign:
			a := &ir.Assign{Label: n.Label}
			if n.LHS != nil {
				a.LHS = in.ref(n.LHS, s, true)
			}
			for _, r := range n.Reads {
				a.Reads = append(a.Reads, in.ref(r, s, false))
			}
			out = append(out, a)
		case *ir.Call:
			inlined, err := in.call(n, s, depth, bp)
			if err != nil {
				return nil, err
			}
			out = append(out, inlined...)
		default:
			return nil, fmt.Errorf("inline: unknown node %T", n)
		}
	}
	return out, nil
}

func (in *inliner) expr(e ir.Expr, s *subst) ir.Expr {
	for old, nv := range s.vars {
		e = e.Rename(old, nv)
	}
	return e
}

func (in *inliner) ref(r *ir.Ref, s *subst, write bool) *ir.Ref {
	subs := make([]ir.Expr, len(r.Subs))
	for i, e := range r.Subs {
		subs[i] = in.expr(e, s)
	}
	if rw, ok := s.arrays[r.Array]; ok {
		nr := rw(subs, write)
		nr.Write = write
		return nr
	}
	nr := ir.NewRef(r.Array, subs...)
	nr.Write = write
	return nr
}

// call inlines one call statement.
func (in *inliner) call(c *ir.Call, s *subst, depth, bp int) ([]ir.Node, error) {
	in.stats.Calls++
	callee, ok := in.prog.Subs[c.Callee]
	if !ok {
		// System call (I/O, intrinsic): not inlined, accesses unaccounted.
		in.stats.SystemCalls++
		return nil, nil
	}
	if depth >= in.opt.MaxDepth {
		return nil, fmt.Errorf("inline: call depth exceeds %d at %s (recursive calls are outside the program model)", in.opt.MaxDepth, c.Callee)
	}
	if len(c.Args) != len(callee.Formals) {
		return nil, fmt.Errorf("inline: call to %s passes %d args for %d formals", c.Callee, len(c.Args), len(callee.Formals))
	}

	// Classify all actuals first; reject the call if any is N-able.
	classes := make([]ArgClass, len(c.Args))
	for i, arg := range c.Args {
		// Rewrite the actual's subscripts into caller terms first.
		classes[i] = ClassifyArg(arg, callee.Formals[i])
		switch classes[i] {
		case Propagateable:
			in.stats.PAble++
		case Renameable:
			in.stats.RAble++
		case NonAnalysable:
			in.stats.NAble++
		}
	}
	for i, cl := range classes {
		if cl == NonAnalysable {
			return nil, fmt.Errorf("inline: call to %s: actual %d (%s) is non-analysable", c.Callee, i+1, c.Args[i].Array.Name)
		}
	}
	in.stats.Inlined++

	// Fresh names for the callee's loop variables.
	cs := &subst{arrays: map[*ir.Array]refRewrite{}, vars: map[string]string{}}
	in.fresh++
	instance := in.fresh
	collectLoopVars(callee.Body, func(v string) {
		if _, done := cs.vars[v]; !done {
			cs.vars[v] = fmt.Sprintf("%s$%d$%s", callee.Name, instance, v)
		}
	})

	// Bind formals.
	for i, arg := range c.Args {
		formal := callee.Formals[i]
		actual := arg
		// Normalise the actual's subscripts into caller terms.
		asubs := make([]ir.Expr, len(actual.Subs))
		for j, e := range actual.Subs {
			asubs[j] = in.expr(e, s)
		}
		// The actual may itself be a formal of the caller: resolve through
		// the caller's substitution by rewriting a probe reference.
		target := actual.Array
		baseSubs := asubs
		if len(baseSubs) == 0 {
			baseSubs = ones(target.Rank())
		}
		if rw, ok := s.arrays[target]; ok {
			probe := rw(baseSubs, false)
			target = probe.Array
			baseSubs = probe.Subs
		}
		cs.arrays[formal] = in.bindFormal(target, baseSubs, formal, classes[i])
	}

	var out []ir.Node
	if in.stack != nil {
		// Fig. 4: the caller stores the return address and the addresses of
		// the actuals into its stack frame before the call.
		slot := int64(bp + 1)
		st := &ir.Assign{Label: fmt.Sprintf("%s$%d$ret", c.Callee, instance),
			LHS: ir.NewRef(in.stack, ir.Con(slot))}
		st.LHS.Write = true
		out = append(out, st)
		for range c.Args {
			slot++
			w := &ir.Assign{Label: fmt.Sprintf("%s$%d$arg", c.Callee, instance),
				LHS: ir.NewRef(in.stack, ir.Con(slot))}
			w.LHS.Write = true
			out = append(out, w)
		}
		// The callee reads its incoming arguments.
		for j := range c.Args {
			rd := &ir.Assign{Label: fmt.Sprintf("%s$%d$ld", c.Callee, instance),
				Reads: []*ir.Ref{ir.NewRef(in.stack, ir.Con(int64(bp+2+j)))}}
			out = append(out, rd)
		}
	}
	newBP := bp + len(c.Args) + 1
	body, err := in.body(callee.Body, cs, depth+1, newBP)
	if err != nil {
		return nil, err
	}
	out = append(out, body...)
	if in.stack != nil {
		// Return: the callee reloads the return address.
		rd := &ir.Assign{Label: fmt.Sprintf("%s$%d$rts", c.Callee, instance),
			Reads: []*ir.Ref{ir.NewRef(in.stack, ir.Con(int64(bp+1)))}}
		out = append(out, rd)
	}
	// The callee's locals become uniquely named locals of the flat program.
	for _, loc := range callee.Locals {
		in.extraLocals = append(in.extraLocals, in.renameLocal(loc, instance, cs))
	}
	return out, nil
}

// renameLocal gives a callee local a unique identity per inlined instance
// and registers a rewrite for it. FORTRAN locals are static (SAVE-like
// model): all instances of the same subroutine share storage, which we
// model by aliasing instance 2+ onto instance 1.
func (in *inliner) renameLocal(loc *ir.Array, instance int, cs *subst) *ir.Array {
	nl := ir.NewArray(fmt.Sprintf("%s$%d", loc.Name, instance), loc.ElemSize, loc.Dims...)
	if first, ok := in.localCache[loc]; ok {
		nl.Alias = first
	} else {
		in.localCache[loc] = nl
	}
	cs.arrays[loc] = func(subs []ir.Expr, write bool) *ir.Ref {
		return ir.NewRef(nl, subs...)
	}
	return nl
}

// bindFormal builds the reference rewriter for one formal according to its
// classification. target/baseSubs identify the actual's storage in caller
// terms (baseSubs = (1,...,1) for whole-array actuals).
func (in *inliner) bindFormal(target *ir.Array, baseSubs []ir.Expr, formal *ir.Array, class ArgClass) refRewrite {
	switch class {
	case Propagateable:
		switch {
		case isScalar(formal):
			return func(subs []ir.Expr, write bool) *ir.Ref {
				return ir.NewRef(target, baseSubs...)
			}
		case formal.Rank() == 1 && target.Rank() == 1:
			// F(f) → T(base + f − 1): stays in the caller's array.
			return func(subs []ir.Expr, write bool) *ir.Ref {
				return ir.NewRef(target, baseSubs[0].Plus(subs[0]).PlusConst(-1))
			}
		case formal.Rank() == 1:
			// 1-D view of a multi-dimensional actual: flat sequence
			// association.
			flat := in.flatAlias(target)
			off := linearExpr(target, baseSubs)
			return func(subs []ir.Expr, write bool) *ir.Ref {
				return ir.NewRef(flat, off.Plus(subs[0]))
			}
		default:
			// Same rank, matching dims but last: per-dimension shift.
			return func(subs []ir.Expr, write bool) *ir.Ref {
				shifted := make([]ir.Expr, len(subs))
				for d := range subs {
					shifted[d] = baseSubs[d].Plus(subs[d]).PlusConst(-1)
				}
				return ir.NewRef(target, shifted...)
			}
		}
	case Renameable:
		// Fresh array with the formal's shape aliasing the actual's
		// storage; the element offset of the actual folds into the first
		// subscript, so addresses stay exact (Fig. 5's B1/B2).
		in.renameCount++
		renamed := ir.NewArray(fmt.Sprintf("%s$r%d", formal.Name, in.renameCount), formal.ElemSize, formal.Dims...)
		renamed.Alias = target
		in.extraLocals = append(in.extraLocals, renamed)
		off := linearExpr(target, baseSubs)
		return func(subs []ir.Expr, write bool) *ir.Ref {
			shifted := make([]ir.Expr, len(subs))
			copy(shifted, subs)
			shifted[0] = subs[0].Plus(off)
			return ir.NewRef(renamed, shifted...)
		}
	}
	panic("inline: bindFormal on non-analysable actual")
}

func ones(n int) []ir.Expr {
	out := make([]ir.Expr, n)
	for i := range out {
		out[i] = ir.Con(1)
	}
	return out
}

func collectLoopVars(nodes []ir.Node, f func(string)) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Loop:
			f(n.Var)
			collectLoopVars(n.Body, f)
		case *ir.If:
			collectLoopVars(n.Body, f)
		}
	}
}
