package prob

import (
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/trace"
)

func prep(t *testing.T, sub *ir.Subroutine) *ir.NProgram {
	t.Helper()
	np, err := normalize.Normalize(sub)
	if err != nil {
		t.Fatal(err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		t.Fatal(err)
	}
	return np
}

func streamSub(n int64) *ir.Subroutine {
	b := ir.NewSub("stream")
	A := b.Real8("A", n)
	B := b.Real8("B", n)
	b.Do("I", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(A, ir.Var("I")), ir.R(B, ir.Var("I"))).
		End()
	return b.Build()
}

func TestPoissonCDF(t *testing.T) {
	if got := poissonCDF(0, 0); got != 1 {
		t.Errorf("λ=0 CDF = %v", got)
	}
	// λ=1: P(X<=0) = e^{-1} ≈ 0.3679, P(X<=1) ≈ 0.7358.
	if got := poissonCDF(0, 1); got < 0.36 || got > 0.38 {
		t.Errorf("P(X<=0 | λ=1) = %v", got)
	}
	if got := poissonCDF(1, 1); got < 0.72 || got > 0.75 {
		t.Errorf("P(X<=1 | λ=1) = %v", got)
	}
	// Huge λ: essentially zero.
	if got := poissonCDF(3, 1e5); got > 1e-6 {
		t.Errorf("P(X<=3 | λ=1e5) = %v", got)
	}
	// Large λ falls to the normal approximation and stays in [0,1].
	if got := poissonCDF(800, 750); got < 0 || got > 1 {
		t.Errorf("normal approx out of range: %v", got)
	}
}

// TestStreamingEstimate: a pure streaming kernel misses once per line; the
// probabilistic model must land near 1/LineElems = 25%. (n = 4000 keeps
// the two arrays from landing exactly one cache size apart.)
func TestStreamingEstimate(t *testing.T) {
	np := prep(t, streamSub(4000))
	cfg := cache.Default32K(1)
	rep, err := Estimate(np, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := trace.Simulate(np, cfg)
	if d := rep.MissRatio() - sim.MissRatio(); d < -8 || d > 8 {
		t.Errorf("prob %.2f%%, sim %.2f%%: too far for a streaming kernel", rep.MissRatio(), sim.MissRatio())
	}
}

// TestPathologicalConflictBlindSpot documents the baseline's known blind
// spot (the reason Table 7's ΔP blows up): when two streams land exactly
// one cache size apart, a direct-mapped cache misses on every access, but
// the uniform-mapping assumption predicts a low ratio. The paper's
// pointwise replacement equations get this right.
func TestPathologicalConflictBlindSpot(t *testing.T) {
	np := prep(t, streamSub(4096)) // B begins exactly 32 KB after A
	cfg := cache.Default32K(1)
	rep, err := Estimate(np, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := trace.Simulate(np, cfg)
	if sim.MissRatio() < 99 {
		t.Fatalf("expected full conflict, sim = %.2f%%", sim.MissRatio())
	}
	if rep.MissRatio() > 50 {
		t.Errorf("probabilistic model unexpectedly saw the conflict: %.2f%%", rep.MissRatio())
	}
}

// TestFitsInCacheEstimate: a tiny working set re-read many times is nearly
// all hits; the model must predict a low ratio.
func TestFitsInCacheEstimate(t *testing.T) {
	b := ir.NewSub("fits")
	A := b.Real8("A", 64)
	b.Do("T", ir.Con(1), ir.Con(50)).
		Do("I", ir.Con(1), ir.Con(64)).
		Assign("S1", nil, ir.R(A, ir.Var("I"))).
		End().End()
	np := prep(t, b.Build())
	cfg := cache.Default32K(2)
	rep, err := Estimate(np, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MissRatio() > 10 {
		t.Errorf("prob ratio %.2f%% for an in-cache loop, want small", rep.MissRatio())
	}
}

// TestThrashingEstimate: a working set far exceeding a tiny cache should
// be predicted mostly missing.
func TestThrashingEstimate(t *testing.T) {
	b := ir.NewSub("thrash")
	A := b.Real8("A", 8192)
	b.Do("T", ir.Con(1), ir.Con(4)).
		Do("I", ir.Con(1), ir.Con(8192)).
		Assign("S1", nil, ir.R(A, ir.Var("I").Scale(1))).
		End().End()
	np := prep(t, b.Build())
	cfg := cache.Config{SizeBytes: 512, LineBytes: 32, Assoc: 1}
	rep, err := Estimate(np, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sim := trace.Simulate(np, cfg)
	if rep.MissRatio() < sim.MissRatio()/3 {
		t.Errorf("prob %.2f%% far below sim %.2f%% under thrashing", rep.MissRatio(), sim.MissRatio())
	}
}

func TestRatiosBounded(t *testing.T) {
	np := prep(t, streamSub(512))
	rep, err := Estimate(np, cache.Default32K(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range rep.Refs {
		if e.MissRatio < 0 || e.MissRatio > 1 {
			t.Errorf("%s: ratio %v out of [0,1]", e.Ref.ID, e.MissRatio)
		}
	}
	if rep.MissRatio() < 0 || rep.MissRatio() > 100 {
		t.Errorf("aggregate ratio %v", rep.MissRatio())
	}
}

func TestDeterministic(t *testing.T) {
	np := prep(t, streamSub(512))
	r1, _ := Estimate(np, cache.Default32K(1), Options{})
	r2, _ := Estimate(np, cache.Default32K(1), Options{})
	if r1.MissRatio() != r2.MissRatio() {
		t.Error("estimates differ across runs with the same seed")
	}
}
