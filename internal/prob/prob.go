// Package prob implements a probabilistic analytical miss estimator in the
// spirit of Fraguela, Doallo and Zapata (PACT'99), the baseline the paper
// compares against in Table 7. Instead of solving the replacement
// equations pointwise, it models cache-set occupancy statistically:
//
//   - the reuse distance of each reference is derived from its first
//     (most recent) reuse vector,
//   - the footprint of the intervening accesses is estimated analytically
//     (distinct lines ≈ accesses / line length, the stride-1 assumption the
//     PME area vectors make for the common case),
//   - intervening lines are assumed to fall uniformly over the cache sets,
//     so the number of contenders in the reused line's set is Poisson with
//     rate footprint/sets, and the line survives while fewer than k
//     contenders arrive.
//
// The model is fast — it never walks iteration intervals — and reproduces
// the qualitative behaviour of Table 7: usable accuracy on benign
// configurations and large errors where conflict behaviour is pathological
// (small caches with long lines), where the paper's EstimateMisses stays
// accurate.
package prob

import (
	"context"
	"math"
	"math/rand"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/poly"
	"cachemodel/internal/reuse"
)

// Options tunes the estimator.
type Options struct {
	// Reuse configures reuse-vector generation (shared with the CME
	// analysis so both see the same reuse).
	Reuse reuse.Options
	// MembershipSamples is the number of points sampled per reuse vector
	// to estimate the fraction of consumers whose producer exists
	// (default 64).
	MembershipSamples int
	// Seed seeds the membership sampling (0 = fixed default).
	Seed int64
	// Vectors, when non-nil, supplies precomputed reuse vectors instead
	// of regenerating them (they depend only on the line geometry, so the
	// CME analyzer's vectors transfer directly on the degradation path).
	Vectors map[*ir.NRef][]*reuse.Vector
}

// RefEstimate is the per-reference probabilistic result.
type RefEstimate struct {
	Ref       *ir.NRef
	Volume    int64
	MissRatio float64 // in [0, 1]
}

// Report aggregates the estimates.
type Report struct {
	Config  cache.Config
	Refs    []*RefEstimate
	Elapsed time.Duration
}

// MissRatio returns the access-weighted miss ratio in percent.
func (r *Report) MissRatio() float64 {
	var acc, miss float64
	for _, e := range r.Refs {
		acc += float64(e.Volume)
		miss += float64(e.Volume) * e.MissRatio
	}
	if acc == 0 {
		return 0
	}
	return 100 * miss / acc
}

// Estimator holds the per-program state of the probabilistic model so that
// per-reference estimates can be computed on demand — the CME solvers use
// this as the last rung of their degradation ladder. The estimator owns a
// single RNG; calling RefRatio over np.Refs in order reproduces Estimate
// exactly.
type Estimator struct {
	np           *ir.NProgram
	cfg          cache.Config
	opt          Options
	vecs         map[*ir.NRef][]*reuse.Vector
	spaces       map[*ir.NStmt]*poly.Space
	extents      []float64
	refsPerPoint float64
	rng          *rand.Rand
}

// NewEstimator prepares the probabilistic model for a laid-out program.
func NewEstimator(np *ir.NProgram, cfg cache.Config, opt Options) *Estimator {
	if opt.MembershipSamples == 0 {
		opt.MembershipSamples = 64
	}
	seed := opt.Seed
	if seed == 0 {
		seed = 12345
	}
	vecs := opt.Vectors
	if vecs == nil {
		vecs = reuse.Generate(np, cfg, opt.Reuse)
	}
	spaces := map[*ir.NStmt]*poly.Space{}
	var totalPoints, totalAccesses int64
	for _, s := range np.Stmts {
		sp := poly.FromStmt(s)
		spaces[s] = sp
		totalPoints += sp.Volume()
		totalAccesses += sp.Volume() * int64(len(s.Refs))
	}
	refsPerPoint := 1.0
	if totalPoints > 0 {
		refsPerPoint = float64(totalAccesses) / float64(totalPoints)
	}
	return &Estimator{
		np: np, cfg: cfg, opt: opt,
		vecs:         vecs,
		spaces:       spaces,
		extents:      averageExtents(np, spaces),
		refsPerPoint: refsPerPoint,
		rng:          rand.New(rand.NewSource(seed)),
	}
}

// Volume returns |RIS_R| for a reference of the prepared program.
func (e *Estimator) Volume(r *ir.NRef) int64 { return e.spaces[r.Stmt].Volume() }

// RefRatio returns the closed-form miss-ratio estimate of one reference
// in [0, 1].
func (e *Estimator) RefRatio(r *ir.NRef) float64 {
	return missProbability(r, e.vecs[r], e.spaces[r.Stmt], e.spaces, e.cfg,
		e.extents, e.refsPerPoint, e.rng, e.opt.MembershipSamples)
}

// Estimate runs the probabilistic model over a prepared program.
func Estimate(np *ir.NProgram, cfg cache.Config, opt Options) (*Report, error) {
	return EstimateCtx(context.Background(), np, cfg, opt, budget.Budget{})
}

// EstimateCtx is Estimate under a context and a budget. The model is
// closed-form per reference (it never walks iteration intervals), so
// checkpoints sit between references; each reference costs
// MembershipSamples points of budget. On interruption the partial report
// covers the references estimated so far.
func EstimateCtx(ctx context.Context, np *ir.NProgram, cfg cache.Config, opt Options, b budget.Budget) (*Report, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	m := budget.NewMeter(ctx, b)
	est := NewEstimator(np, cfg, opt)
	rep := &Report{Config: cfg}
	var p *budget.Probe
	if !m.Unlimited() {
		p = m.Probe()
		defer p.Drain()
	}
	for _, r := range np.Refs {
		if p != nil {
			if err := p.Check(int64(est.opt.MembershipSamples), 0); err != nil {
				rep.Elapsed = time.Since(start)
				return rep, err
			}
		}
		e := &RefEstimate{Ref: r, Volume: est.Volume(r)}
		e.MissRatio = est.RefRatio(r)
		rep.Refs = append(rep.Refs, e)
	}
	rep.Elapsed = time.Since(start)
	return rep, nil
}

// averageExtents estimates the average trip count at each depth across the
// program's leaf nests, used to convert reuse vectors into iteration
// distances.
func averageExtents(np *ir.NProgram, spaces map[*ir.NStmt]*poly.Space) []float64 {
	n := np.Depth
	sum := make([]float64, n)
	cnt := make([]float64, n)
	for _, s := range np.Stmts {
		lo, hi, ok := spaces[s].BoundingBox()
		if !ok {
			continue
		}
		for k := 0; k < n; k++ {
			sum[k] += float64(hi[k] - lo[k] + 1)
			cnt[k]++
		}
	}
	out := make([]float64, n)
	for k := range out {
		if cnt[k] > 0 {
			out[k] = sum[k] / cnt[k]
		} else {
			out[k] = 1
		}
	}
	return out
}

// distancePoints converts a reuse vector into an approximate iteration
// distance (number of intervening points).
func distancePoints(v *reuse.Vector, extents []float64) float64 {
	n := len(v.LabelDiff)
	d := 0.0
	for k := 0; k < n; k++ {
		// Product of deeper extents.
		inner := 1.0
		for j := k + 1; j < n; j++ {
			inner *= extents[j]
		}
		if v.LabelDiff[k] != 0 {
			// Crossing between sibling nests at depth k: roughly half of
			// each nest's deeper extent on each side.
			d += math.Abs(float64(v.LabelDiff[k])) * inner
		}
		d += math.Abs(float64(v.IdxDiff[k])) * inner
	}
	if d < 0 {
		return 0
	}
	return d
}

// missProbability samples consumer points, attributes each to its first
// valid reuse vector (cold if none), and models the eviction decision per
// vector statistically: the intervening footprint is estimated from the
// vector's iteration distance and the contenders in the reused line's set
// are taken as Poisson over the uniformly filled sets. Only the cold /
// which-vector split is pointwise; the replacement decision — where the
// paper solves equations — stays a closed-form probability, which is what
// makes the method fast and what costs it accuracy on pathological
// conflicts.
func missProbability(r *ir.NRef, vs []*reuse.Vector, sp *poly.Space, spaces map[*ir.NStmt]*poly.Space,
	cfg cache.Config, extents []float64, refsPerPoint float64, rng *rand.Rand, samples int) float64 {

	pts := sp.Sample(rng, samples)
	if len(pts) == 0 {
		return 0
	}
	sets := float64(cfg.NumSets())
	lineElems := float64(cfg.LineElems(r.Array.ElemSize))
	cold := 0
	perVector := make([]int, len(vs))
	for _, idx := range pts {
		found := false
		for vi, v := range vs {
			_, pidx := v.ProducerPoint(idx)
			if !spaces[v.Producer.Stmt].Contains(pidx) {
				continue
			}
			if cfg.MemLine(v.Producer.AddressAt(pidx)) != cfg.MemLine(v.Consumer.AddressAt(idx)) {
				continue
			}
			perVector[vi]++
			found = true
			break
		}
		if !found {
			cold++
		}
	}
	miss := float64(cold) / float64(len(pts))
	for vi, count := range perVector {
		if count == 0 {
			continue
		}
		dist := distancePoints(vs[vi], extents)
		footprint := dist * refsPerPoint / lineElems // distinct intervening lines
		lambda := footprint / sets
		pSurvive := poissonCDF(float64(cfg.Assoc-1), lambda)
		miss += float64(count) / float64(len(pts)) * (1 - pSurvive)
	}
	return miss
}

// poissonCDF returns P(X ≤ x) for X ~ Poisson(lambda).
func poissonCDF(x, lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	if lambda > 1e6 {
		return 0
	}
	sum := 0.0
	term := math.Exp(-lambda)
	if term == 0 {
		// Normal approximation for large lambda.
		z := (x + 0.5 - lambda) / math.Sqrt(lambda)
		return 0.5 * (1 + math.Erf(z/math.Sqrt2))
	}
	for k := 0.0; k <= x; k++ {
		sum += term
		term *= lambda / (k + 1)
	}
	if sum > 1 {
		sum = 1
	}
	return sum
}
