package fparse

import (
	"fmt"
	"strconv"
	"strings"

	"cachemodel/internal/cerr"
	"cachemodel/internal/ir"
)

// Parse parses FORTRAN-subset source into an ir.Program. The first
// PROGRAM unit (or the first unit of any kind) becomes the entry point.
// Consts supplies values for named compile-time parameters (the paper
// fixes READ-initialised sizes from the reference input the same way).
func Parse(src string, consts map[string]int64) (*ir.Program, error) {
	return ParseOptions(src, Options{Consts: consts})
}

// Options tunes parsing.
type Options struct {
	// Consts fixes named compile-time constants.
	Consts map[string]int64
	// GotoTrips converts backward IF-GOTO loops into DO statements, as the
	// paper does for Swim's and Tomcatv's outer iteration ("the outermost
	// loop is an IF-GOTO construct, which has been converted into a DO
	// statement"): the key is the target statement label, the value the
	// trip count taken from the reference input. A backward GOTO to a
	// label not present here is a parse error (data-dependent loop).
	GotoTrips map[string]int64
}

// ParseOptions is Parse with IF-GOTO conversion support. Malformed input
// yields a positioned *ParseError; the function never panics.
func ParseOptions(src string, opt Options) (prog *ir.Program, err error) {
	defer recoverParse(&prog, &err)
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, consts: opt.Consts, gotoTrips: opt.GotoTrips}
	return p.parseProgram()
}

// MustParse is Parse for tests and examples; it panics on error.
func MustParse(src string, consts map[string]int64) *ir.Program {
	p, err := Parse(src, consts)
	if err != nil {
		panic(err)
	}
	return p
}

// maxNest bounds statement nesting and maxExprDepth expression nesting,
// so that pathological input fails with a positioned error instead of
// exhausting the stack.
const (
	maxNest        = 500
	maxExprDepth   = 1000
	maxAffineTerms = 100
)

type parser struct {
	toks      []token
	pos       int
	consts    map[string]int64
	gotoTrips map[string]int64
	gotoSeq   int
	nest      int // statement nesting depth (DO/IF)
	exprDepth int // expression recursion depth
	// pendingGoto carries a just-parsed backward GOTO target up to
	// parseStmts, which performs the loop conversion.
	pendingGoto string

	// Per-unit state.
	arrays     map[string]*ir.Array
	arrayOrder []string // declaration / first-use order
	scalars    map[string]bool
	formals    []string // formal names in order
}

// declareArray registers an array preserving declaration order.
func (p *parser) declareArray(name string, a *ir.Array) {
	if _, ok := p.arrays[name]; !ok {
		p.arrayOrder = append(p.arrayOrder, name)
	}
	p.arrays[name] = a
}

func (p *parser) peek() token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1] // the EOF token
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return perr(t, format, args...)
}

// errModel is errf for program-model violations (non-affine constructs);
// the error matches cerr.ErrNonAffine under errors.Is.
func (p *parser) errModel(t token, format string, args ...interface{}) error {
	e := perr(t, format, args...)
	e.Err = cerr.ErrNonAffine
	return e
}

func (p *parser) skipNewlines() {
	for p.peek().kind == tokNewline {
		p.pos++
	}
}

func (p *parser) expectNewline() error {
	t := p.peek()
	if t.kind != tokNewline && t.kind != tokEOF {
		return p.errf(t, "expected end of statement, found %s", t)
	}
	p.skipNewlines()
	return nil
}

func (p *parser) acceptIdent(words ...string) bool {
	t := p.peek()
	if t.kind != tokIdent {
		return false
	}
	for _, w := range words {
		if t.text == w {
			p.pos++
			return true
		}
	}
	return false
}

func (p *parser) acceptPunct(s string) bool {
	t := p.peek()
	if t.kind == tokPunct && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return p.errf(p.peek(), "expected %q, found %s", s, p.peek())
	}
	return nil
}

func (p *parser) parseProgram() (*ir.Program, error) {
	prog := ir.NewProgram("parsed")
	var mainName string
	p.skipNewlines()
	for !p.atEOF() {
		t := p.peek()
		if t.kind != tokIdent || (t.text != "PROGRAM" && t.text != "SUBROUTINE") {
			return nil, p.errf(t, "expected PROGRAM or SUBROUTINE, found %s", t)
		}
		isMain := t.text == "PROGRAM"
		p.pos++
		name := p.peek()
		if name.kind != tokIdent {
			return nil, p.errf(name, "expected unit name")
		}
		p.pos++
		sub, err := p.parseUnit(name.text)
		if err != nil {
			return nil, err
		}
		if _, dup := prog.Subs[sub.Name]; dup {
			return nil, p.errf(name, "duplicate subroutine %s", sub.Name)
		}
		prog.Add(sub)
		if isMain && mainName == "" {
			mainName = sub.Name
			prog.Name = sub.Name
		}
		p.skipNewlines()
	}
	if mainName != "" {
		prog.SetMain(mainName)
	}
	if prog.Main == nil {
		return nil, &ParseError{Msg: "no program units found"}
	}
	return prog, nil
}

// parseUnit parses one PROGRAM/SUBROUTINE after its name token.
func (p *parser) parseUnit(name string) (*ir.Subroutine, error) {
	p.arrays = map[string]*ir.Array{}
	p.arrayOrder = nil
	p.scalars = map[string]bool{}
	p.formals = nil
	sub := &ir.Subroutine{Name: name}

	// Formal parameter list.
	if p.acceptPunct("(") {
		for {
			t := p.next()
			if t.kind != tokIdent {
				return nil, p.errf(t, "expected formal parameter name")
			}
			p.formals = append(p.formals, t.text)
			p.scalars[t.text] = true // scalar until declared with dims
			if p.acceptPunct(")") {
				break
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}

	// Declarations.
	if err := p.parseDecls(); err != nil {
		return nil, err
	}

	// Body.
	body, err := p.parseStmts(map[string]bool{"END": true}, nil)
	if err != nil {
		return nil, err
	}
	if !p.acceptIdent("END") {
		return nil, p.errf(p.peek(), "expected END")
	}
	p.expectNewline()

	sub.Body = body
	// Partition arrays into formals (in order) and locals.
	formalSet := map[string]bool{}
	for _, f := range p.formals {
		formalSet[f] = true
		a, ok := p.arrays[f]
		if !ok {
			// Scalar formal: model as a 1-element array.
			a = ir.NewArray(f, 8, 1)
			p.declareArray(f, a)
		}
		sub.Formals = append(sub.Formals, a)
	}
	for _, n := range p.arrayOrder {
		if !formalSet[n] {
			sub.Locals = append(sub.Locals, p.arrays[n])
		}
	}
	return sub, nil
}

func (p *parser) parseDecls() error {
	for {
		t := p.peek()
		if t.kind != tokIdent {
			return nil
		}
		switch {
		case strings.HasPrefix(t.text, "REAL") || t.text == "INTEGER" || t.text == "DOUBLEPRECISION":
			elem := int64(8)
			if t.text == "INTEGER" || t.text == "REAL" || t.text == "REAL*4" {
				elem = 4
			}
			p.pos++
			if err := p.parseDeclList(elem); err != nil {
				return err
			}
		case t.text == "DIMENSION":
			p.pos++
			if err := p.parseDeclList(8); err != nil {
				return err
			}
		case t.text == "PARAMETER":
			// PARAMETER (NAME = value, ...): add to consts.
			p.pos++
			if err := p.expectPunct("("); err != nil {
				return err
			}
			for {
				nameTok := p.next()
				if nameTok.kind != tokIdent {
					return p.errf(nameTok, "expected parameter name")
				}
				if err := p.expectPunct("="); err != nil {
					return err
				}
				v, err := p.parseConstValue()
				if err != nil {
					return err
				}
				if p.consts == nil {
					p.consts = map[string]int64{}
				}
				p.consts[nameTok.text] = v
				if p.acceptPunct(")") {
					break
				}
				if err := p.expectPunct(","); err != nil {
					return err
				}
			}
			p.expectNewline()
		case t.text == "COMMON" || t.text == "IMPLICIT" || t.text == "SAVE" || t.text == "DATA" || t.text == "EXTERNAL" || t.text == "INTRINSIC":
			// Skip to end of line: storage association beyond DIMENSION is
			// not part of the program model.
			for p.peek().kind != tokNewline && p.peek().kind != tokEOF {
				p.pos++
			}
			p.skipNewlines()
		default:
			return nil
		}
	}
}

// parseDeclList parses "name(dims), name, name(dims)..." after a type or
// DIMENSION keyword.
func (p *parser) parseDeclList(elem int64) error {
	for {
		t := p.next()
		if t.kind != tokIdent {
			return p.errf(t, "expected variable name in declaration")
		}
		name := t.text
		if p.acceptPunct("(") {
			var dims []int64
			done := false
			for !done {
				dim, err := p.parseDim()
				if err != nil {
					return err
				}
				dims = append(dims, dim)
				if p.acceptPunct(")") {
					done = true
				} else if err := p.expectPunct(","); err != nil {
					return err
				}
				// ir.NewArray accepts a positive extent, or 0 (assumed size,
				// from "*") in the last position only; reject anything else
				// here so declaration mistakes never reach a panic.
				d := dims[len(dims)-1]
				if d <= 0 && !(d == 0 && done) {
					if d == 0 {
						return p.errf(t, "array %s: assumed size '*' is only valid as the last dimension", name)
					}
					return p.errf(t, "array %s: dimension %d must be positive", name, len(dims))
				}
			}
			if old, ok := p.arrays[name]; ok {
				// Re-declaration (REAL*8 A then DIMENSION A(...)): keep the
				// element size already recorded.
				elem = old.ElemSize
			}
			p.declareArray(name, ir.NewArray(name, elem, dims...))
			delete(p.scalars, name)
		} else {
			if _, isArr := p.arrays[name]; !isArr {
				p.scalars[name] = true
			}
		}
		if p.peek().kind == tokNewline || p.peek().kind == tokEOF {
			p.skipNewlines()
			return nil
		}
		if err := p.expectPunct(","); err != nil {
			return err
		}
	}
}

// parseDim parses one declared dimension: an integer, a named constant, a
// simple affine constant expression, or "*" (assumed size).
func (p *parser) parseDim() (int64, error) {
	if p.acceptPunct("*") {
		return 0, nil
	}
	e, err := p.parseAffine()
	if err != nil {
		return 0, err
	}
	if !e.IsConst() {
		return 0, p.errf(p.peek(), "array dimension must be a compile-time constant")
	}
	return e.Const, nil
}

func (p *parser) parseConstValue() (int64, error) {
	e, err := p.parseAffine()
	if err != nil {
		return 0, err
	}
	if !e.IsConst() {
		return 0, p.errf(p.peek(), "expected a constant")
	}
	return e.Const, nil
}

// parseStmts parses statements until one of the stop keywords is the next
// token (not consumed). pendingLabels tracks "DO <label>" terminators.
func (p *parser) parseStmts(stop map[string]bool, doLabels []string) ([]ir.Node, error) {
	var out []ir.Node
	labelPos := map[string]int{}
	for {
		p.skipNewlines()
		t := p.peek()
		if t.kind == tokEOF {
			return out, nil
		}
		// Statement label (e.g. "100 CONTINUE" or "200 S = ...").
		if t.kind == tokNumber && containsLabel(doLabels, t.text) {
			return out, nil // a DO terminator: the owning loop consumes it
		}
		if t.kind == tokNumber {
			// A labelled statement: remember the position as a potential
			// backward-GOTO target (IF-GOTO loop head).
			labelPos[t.text] = len(out)
		}
		if t.kind == tokIdent && stop[t.text] {
			return out, nil
		}
		node, err := p.parseStmt(doLabels)
		if err != nil {
			return nil, err
		}
		if node != nil {
			out = append(out, node)
		}
		if lbl := p.pendingGoto; lbl != "" {
			p.pendingGoto = ""
			pos, known := labelPos[lbl]
			if !known {
				return nil, p.errModel(t, "GOTO %s is not a backward loop in this scope (forward GOTOs are outside the program model)", lbl)
			}
			trips, fixed := p.gotoTrips[lbl]
			if !fixed {
				return nil, p.errModel(t, "IF-GOTO loop to label %s is data-dependent; fix its trip count via Options.GotoTrips (the paper fixes it from the reference input)", lbl)
			}
			p.gotoSeq++
			body := append([]ir.Node(nil), out[pos:]...)
			loop := &ir.Loop{Var: fmt.Sprintf("__goto%d", p.gotoSeq),
				Lo: ir.Con(1), Hi: ir.Con(trips), Step: 1, Label: lbl, Body: body}
			out = append(out[:pos], loop)
			delete(labelPos, lbl)
		}
	}
}

func containsLabel(labels []string, l string) bool {
	for _, x := range labels {
		if x == l {
			return true
		}
	}
	return false
}

func (p *parser) parseStmt(doLabels []string) (ir.Node, error) {
	t := p.peek()
	if p.nest >= maxNest {
		return nil, p.errf(t, "statement nesting deeper than %d levels", maxNest)
	}
	p.nest++
	defer func() { p.nest-- }()
	switch {
	case t.kind == tokIdent && t.text == "DO":
		return p.parseDo(doLabels)
	case t.kind == tokIdent && t.text == "IF":
		return p.parseIf(doLabels)
	case t.kind == tokIdent && t.text == "CALL":
		return p.parseCall()
	case t.kind == tokIdent && t.text == "GOTO":
		p.pos++
		lt := p.next()
		if lt.kind != tokNumber {
			return nil, p.errf(lt, "expected statement label after GOTO")
		}
		p.pendingGoto = lt.text
		p.expectNewline()
		return nil, nil
	case t.kind == tokIdent && (t.text == "CONTINUE" || t.text == "RETURN" || t.text == "STOP" ||
		t.text == "WRITE" || t.text == "PRINT" || t.text == "READ" || t.text == "FORMAT"):
		// I/O and control statements outside the model: skip the line (the
		// paper likewise excludes system-call accesses).
		for p.peek().kind != tokNewline && p.peek().kind != tokEOF {
			p.pos++
		}
		p.skipNewlines()
		return nil, nil
	case t.kind == tokIdent:
		return p.parseAssign()
	case t.kind == tokNumber:
		// Labelled statement that is not a DO terminator for the current
		// nesting: treat the label as inert.
		p.pos++
		return p.parseStmt(doLabels)
	}
	return nil, p.errf(t, "unexpected %s at statement start", t)
}

// parseDo parses "DO [label] var = lo, hi [, step]" and its body.
// Nested loops may share one labelled terminator (FORTRAN's "DO 400 ...
// DO 400 ... 400 CONTINUE"); only the outermost loop of a label consumes
// the terminator line.
func (p *parser) parseDo(doLabels []string) (ir.Node, error) {
	p.next() // DO
	label := ""
	if p.peek().kind == tokNumber {
		label = p.next().text
	}
	v := p.next()
	if v.kind != tokIdent {
		return nil, p.errf(v, "expected loop variable")
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	lo, err := p.parseAffine()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(","); err != nil {
		return nil, err
	}
	hi, err := p.parseAffine()
	if err != nil {
		return nil, err
	}
	step := int64(1)
	if p.acceptPunct(",") {
		se, err := p.parseAffine()
		if err != nil {
			return nil, err
		}
		if !se.IsConst() {
			return nil, p.errf(p.peek(), "loop step must be a compile-time constant")
		}
		step = se.Const
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}

	loop := &ir.Loop{Var: v.text, Lo: lo, Hi: hi, Step: step, Label: label}
	// The loop variable shadows any scalar of the same name.
	wasScalar := p.scalars[v.text]
	delete(p.scalars, v.text)
	defer func() {
		if wasScalar {
			p.scalars[v.text] = true
		}
	}()

	if label != "" {
		shared := containsLabel(doLabels, label)
		body, err := p.parseStmts(nil, append(append([]string(nil), doLabels...), label))
		if err != nil {
			return nil, err
		}
		// Only the outermost loop of a shared label consumes the
		// terminator line.
		if !shared && p.peek().kind == tokNumber && p.peek().text == label {
			p.next()
			if !p.acceptIdent("CONTINUE") {
				// A labelled real statement terminates the loop after
				// executing: parse it as the last body statement.
				last, err := p.parseStmt(doLabels)
				if err != nil {
					return nil, err
				}
				if last != nil {
					body = append(body, last)
				}
			} else {
				p.expectNewline()
			}
		}
		loop.Body = body
		return loop, nil
	}
	body, err := p.parseStmts(map[string]bool{"ENDDO": true, "END": true}, doLabels)
	if err != nil {
		return nil, err
	}
	if !p.acceptIdent("ENDDO") {
		return nil, p.errf(p.peek(), "expected ENDDO")
	}
	p.expectNewline()
	loop.Body = body
	return loop, nil
}

// parseIf parses block IF ... THEN / ENDIF and logical IF (single
// statement) forms. ELSE is outside the analysable model and rejected.
func (p *parser) parseIf(doLabels []string) (ir.Node, error) {
	p.next() // IF
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	conds, err := p.parseConds()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	node := &ir.If{Conds: conds}
	if p.acceptIdent("THEN") {
		if err := p.expectNewline(); err != nil {
			return nil, err
		}
		body, err := p.parseStmts(map[string]bool{"ENDIF": true, "ELSE": true, "END": true}, doLabels)
		if err != nil {
			return nil, err
		}
		if p.peek().kind == tokIdent && p.peek().text == "ELSE" {
			return nil, p.errModel(p.peek(), "ELSE branches are not in the analysable program model")
		}
		if !p.acceptIdent("ENDIF") {
			return nil, p.errf(p.peek(), "expected ENDIF")
		}
		p.expectNewline()
		node.Body = body
		return node, nil
	}
	// Logical IF: one statement on the same line.
	st, err := p.parseStmt(doLabels)
	if err != nil {
		return nil, err
	}
	if st == nil && p.pendingGoto != "" {
		// "IF (cond) GOTO label": the loop-back branch of an IF-GOTO
		// loop. The condition is the (data-dependent) continuation test;
		// the conversion replaces it with a fixed trip count, so the IF
		// node itself disappears.
		return nil, nil
	}
	if st != nil {
		node.Body = []ir.Node{st}
	}
	return node, nil
}

// parseConds parses cond {.AND. cond}.
func (p *parser) parseConds() ([]ir.Cond, error) {
	var out []ir.Cond
	for {
		lhs, err := p.parseAffine()
		if err != nil {
			return nil, err
		}
		op := p.next()
		if op.kind != tokRelop {
			return nil, p.errf(op, "expected comparison operator")
		}
		var cop ir.CmpOp
		switch op.text {
		case ".EQ.":
			cop = ir.EQ
		case ".LE.":
			cop = ir.LE
		case ".LT.":
			cop = ir.LT
		case ".GE.":
			cop = ir.GE
		case ".GT.":
			cop = ir.GT
		default:
			return nil, p.errModel(op, "operator %s is outside the affine condition model", op.text)
		}
		rhs, err := p.parseAffine()
		if err != nil {
			return nil, err
		}
		out = append(out, ir.Cond{LHS: lhs, Op: cop, RHS: rhs})
		if p.peek().kind == tokRelop && p.peek().text == ".AND." {
			p.pos++
			continue
		}
		return out, nil
	}
}

// parseCall parses CALL name[(args)].
func (p *parser) parseCall() (ir.Node, error) {
	p.next() // CALL
	name := p.next()
	if name.kind != tokIdent {
		return nil, p.errf(name, "expected subroutine name")
	}
	call := &ir.Call{Callee: name.text}
	if p.acceptPunct("(") {
		for {
			arg, err := p.parseArg()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, arg)
			if p.acceptPunct(")") {
				break
			}
			if err := p.expectPunct(","); err != nil {
				return nil, err
			}
		}
	}
	p.expectNewline()
	return call, nil
}

func (p *parser) parseArg() (ir.Arg, error) {
	t := p.next()
	if t.kind != tokIdent {
		return ir.Arg{}, p.errf(t, "call arguments must be variables or array elements")
	}
	if a, ok := p.arrays[t.text]; ok {
		if p.acceptPunct("(") {
			subs, err := p.parseSubscripts()
			if err != nil {
				return ir.Arg{}, err
			}
			if len(subs) != a.Rank() {
				return ir.Arg{}, p.errf(t, "array %s: %d subscripts for rank %d", t.text, len(subs), a.Rank())
			}
			return ir.Arg{Array: a, Subs: subs}, nil
		}
		return ir.Arg{Array: a}, nil
	}
	// Scalar argument: materialise a 1-element array on first use so that
	// it has storage.
	a := ir.NewArray(t.text, 8, 1)
	p.declareArray(t.text, a)
	return ir.Arg{Array: a}, nil
}

// parseAssign parses "ref = expression". Scalar targets keep only their
// RHS array reads (the scalar lives in a register).
func (p *parser) parseAssign() (ir.Node, error) {
	t := p.next()
	name := t.text
	var lhs *ir.Ref
	if a, ok := p.arrays[name]; ok {
		if err := p.expectPunct("("); err != nil {
			return nil, p.errf(t, "array %s assigned without subscripts", name)
		}
		subs, err := p.parseSubscripts()
		if err != nil {
			return nil, err
		}
		if len(subs) != a.Rank() {
			return nil, p.errf(t, "array %s: %d subscripts for rank %d", name, len(subs), a.Rank())
		}
		lhs = ir.NewRef(a, subs...)
	} else {
		p.scalars[name] = true // scalar target
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	reads, err := p.parseRHS()
	if err != nil {
		return nil, err
	}
	if err := p.expectNewline(); err != nil {
		return nil, err
	}
	return ir.NewAssign(fmt.Sprintf("L%d", t.line), lhs, reads...), nil
}

// parseRHS scans an arbitrary arithmetic expression, collecting array
// references in textual order and ignoring scalars and literals.
func (p *parser) parseRHS() ([]*ir.Ref, error) {
	var reads []*ir.Ref
	depth := 0
	for {
		t := p.peek()
		switch {
		case t.kind == tokNewline || t.kind == tokEOF:
			if depth != 0 {
				return nil, p.errf(t, "unbalanced parentheses in expression")
			}
			return reads, nil
		case t.kind == tokPunct && t.text == "(":
			depth++
			p.pos++
		case t.kind == tokPunct && t.text == ")":
			depth--
			if depth < 0 {
				return nil, p.errf(t, "unbalanced ')' in expression")
			}
			p.pos++
		case t.kind == tokIdent:
			p.pos++
			if a, ok := p.arrays[t.text]; ok {
				if err := p.expectPunct("("); err != nil {
					return nil, p.errf(t, "array %s used without subscripts", t.text)
				}
				subs, err := p.parseSubscripts()
				if err != nil {
					return nil, err
				}
				if len(subs) != a.Rank() {
					return nil, p.errf(t, "array %s: %d subscripts for rank %d", t.text, len(subs), a.Rank())
				}
				reads = append(reads, ir.NewRef(a, subs...))
			}
			// Scalars, intrinsics (ABS, SQRT...) contribute no references;
			// their argument lists are scanned by the same loop.
		default:
			p.pos++
		}
	}
}

// parseSubscripts parses "e1, e2, ...)" (the opening paren is consumed).
func (p *parser) parseSubscripts() ([]ir.Expr, error) {
	var subs []ir.Expr
	for {
		e, err := p.parseAffine()
		if err != nil {
			return nil, err
		}
		subs = append(subs, e)
		if p.acceptPunct(")") {
			return subs, nil
		}
		if err := p.expectPunct(","); err != nil {
			return nil, err
		}
	}
}

// parseAffine parses an affine expression over loop variables and named
// constants: term { (+|-) term }, term := factor { * factor }, where at
// most one factor per product may be non-constant.
func (p *parser) parseAffine() (ir.Expr, error) {
	e, err := p.parseAffineTerm()
	if err != nil {
		return ir.Expr{}, err
	}
	for {
		if p.acceptPunct("+") {
			t, err := p.parseAffineTerm()
			if err != nil {
				return ir.Expr{}, err
			}
			e = e.Plus(t)
		} else if p.acceptPunct("-") {
			t, err := p.parseAffineTerm()
			if err != nil {
				return ir.Expr{}, err
			}
			e = e.Minus(t)
		} else {
			return e, nil
		}
		// A legitimate affine expression mentions at most the enclosing
		// loop variables; an unbounded count is pathological input and
		// each addition copies the term map, so cap it.
		if len(e.Terms) > maxAffineTerms {
			return ir.Expr{}, p.errf(p.peek(), "more than %d distinct variables in one affine expression", maxAffineTerms)
		}
	}
}

func (p *parser) parseAffineTerm() (ir.Expr, error) {
	e, err := p.parseAffineFactor()
	if err != nil {
		return ir.Expr{}, err
	}
	for p.acceptPunct("*") {
		f, err := p.parseAffineFactor()
		if err != nil {
			return ir.Expr{}, err
		}
		switch {
		case f.IsConst():
			e = e.Scale(f.Const)
		case e.IsConst():
			e = f.Scale(e.Const)
		default:
			return ir.Expr{}, p.errModel(p.peek(), "non-affine product of two variables")
		}
	}
	return e, nil
}

func (p *parser) parseAffineFactor() (ir.Expr, error) {
	if p.exprDepth >= maxExprDepth {
		return ir.Expr{}, p.errf(p.peek(), "expression nesting deeper than %d levels", maxExprDepth)
	}
	p.exprDepth++
	defer func() { p.exprDepth-- }()
	t := p.next()
	switch {
	case t.kind == tokNumber:
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return ir.Expr{}, p.errf(t, "subscript constants must be integers: %q", t.text)
		}
		return ir.Con(v), nil
	case t.kind == tokPunct && t.text == "-":
		f, err := p.parseAffineFactor()
		if err != nil {
			return ir.Expr{}, err
		}
		return f.Scale(-1), nil
	case t.kind == tokPunct && t.text == "+":
		return p.parseAffineFactor()
	case t.kind == tokPunct && t.text == "(":
		e, err := p.parseAffine()
		if err != nil {
			return ir.Expr{}, err
		}
		if err := p.expectPunct(")"); err != nil {
			return ir.Expr{}, err
		}
		return e, nil
	case t.kind == tokIdent:
		if v, ok := p.consts[t.text]; ok {
			return ir.Con(v), nil
		}
		return ir.Var(t.text), nil
	}
	return ir.Expr{}, p.errf(t, "unexpected %s in affine expression", t)
}
