package fparse

import (
	"fmt"
	"strings"

	"cachemodel/internal/cerr"
	"cachemodel/internal/ir"
)

// ParseError is a positioned parse failure. Every malformed input yields
// one (never a panic); Line and Col locate the offending token. When the
// failure is a program-model violation rather than a syntax error, Err
// carries the matching sentinel (cerr.ErrNonAffine), so callers can
// distinguish "fix the source" from "this program is outside the model"
// with errors.Is.
type ParseError struct {
	Line int    // 1-based source line
	Col  int    // 1-based source column (0 when unknown)
	Msg  string // human-readable description
	Err  error  // optional underlying sentinel
}

// Error formats the error with its position.
func (e *ParseError) Error() string {
	switch {
	case e.Line > 0 && e.Col > 0:
		return fmt.Sprintf("line %d, col %d: %s", e.Line, e.Col, e.Msg)
	case e.Line > 0:
		return fmt.Sprintf("line %d: %s", e.Line, e.Msg)
	default:
		return e.Msg
	}
}

// Unwrap exposes the underlying sentinel to errors.Is / errors.As.
func (e *ParseError) Unwrap() error { return e.Err }

// perr builds a positioned error from a token.
func perr(t token, format string, args ...interface{}) *ParseError {
	return &ParseError{Line: t.line, Col: t.col + 1, Msg: fmt.Sprintf(format, args...)}
}

// recoverParse converts a parser/ir panic into a *ParseError, classifying
// program-model violations. Panics here are defensive: all known invalid
// inputs are rejected with positioned errors before reaching ir.
func recoverParse(prog **ir.Program, err *error) {
	r := recover()
	if r == nil {
		return
	}
	msg := fmt.Sprint(r)
	pe := &ParseError{Msg: msg}
	if strings.Contains(msg, "non-affine") || strings.Contains(msg, "non-loop variable") || strings.Contains(msg, "data-dependent") {
		pe.Err = cerr.ErrNonAffine
	}
	*prog = nil
	*err = pe
}
