package fparse

import (
	"errors"
	"testing"

	"cachemodel/internal/ir"
	"cachemodel/internal/kernels"
)

// FuzzParseFortran asserts the parser's robustness contract: any input
// either parses or fails with a positioned *ParseError — never a panic —
// and for input that parses, printing is a fixpoint:
// Print(parse(Print(parse(src)))) == Print(parse(src)).
func FuzzParseFortran(f *testing.F) {
	seeds := []string{
		figure1Src,
		hydroSrc,
		mmtSrc,
		"", "      END\n",
		"      PROGRAM P\n      REAL*8 A(10)\n      DO I = 1, 10\n        A(I) = A(I)\n      ENDDO\n      END\n",
		"      PROGRAM P\n      REAL*8 A(10)\n      A(I*J) = 1\n      END\n",
		"      PROGRAM P\n      REAL*8 A(4,*)\n      IF (I .LE. 3) THEN\n        A(I, J) = 2*I - J + 1\n      ENDIF\n      END\n",
		"      PROGRAM P\n      PARAMETER (N = 6)\n      REAL*8 A(N)\n      DO 10 I = 1, N, 2\n      A(I) = 0\n 10   CONTINUE\n      END\n",
		"      SUBROUTINE S(X, Y)\n      DIMENSION X(8), Y(8)\n      CALL T(X(1), Y)\n      END\n",
	}
	for _, p := range []*ir.Program{
		kernels.Hydro(10, 10),
		kernels.MGRID(8),
		kernels.MMT(8, 4, 4),
		kernels.Tomcatv(10, 2),
		kernels.Swim(10, 2),
		kernels.VCycle(16, 1),
	} {
		seeds = append(seeds, Print(p))
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseOptions(src, Options{})
		if err != nil {
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("parse error is not a *ParseError: %T %v", err, err)
			}
			return
		}
		s1 := Print(prog)
		p1, err := Parse(s1, nil)
		if err != nil {
			t.Fatalf("printed source does not reparse: %v\nsource:\n%s", err, s1)
		}
		if s2 := Print(p1); s1 != s2 {
			t.Fatalf("print is not a fixpoint\nfirst:\n%s\nsecond:\n%s", s1, s2)
		}
	})
}
