package fparse

import (
	"testing"

	"cachemodel/internal/inline"
	"cachemodel/internal/ir"
	"cachemodel/internal/kernels"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/trace"
)

// figure1Src is the Figure 1 subroutine in source form.
const figure1Src = `
      SUBROUTINE FOO
      REAL*8 A, B
      DIMENSION A(N), B(N, N)
      DO I1 = 2, N
        A(I1 - 1) = T
        DO I2 = I1, N
          B(I2 - 1, I1) = A(I2 - 1)
        ENDDO
        DO I2 = 1, N
          T = B(I2, I1)
        ENDDO
        T = A(I1)
      ENDDO
      DO I1 = 1, N - 1
        A(I1 + 1) = T
      ENDDO
      END
`

func TestParseFigure1(t *testing.T) {
	p, err := Parse(figure1Src, map[string]int64{"N": 10})
	if err != nil {
		t.Fatal(err)
	}
	sub := p.Main
	if sub.Name != "FOO" {
		t.Errorf("name = %s", sub.Name)
	}
	st := p.CollectStats()
	if st.Statements != 5 {
		t.Errorf("statements = %d, want 5", st.Statements)
	}
	// References: A(I1-1) w, B(..) w + A(..) r, B r, A r, A w = 6.
	if st.References != 6 {
		t.Errorf("references = %d, want 6", st.References)
	}
	np, err := normalize.Normalize(sub)
	if err != nil {
		t.Fatal(err)
	}
	if np.Depth != 2 || len(np.Stmts) != 5 {
		t.Errorf("depth %d stmts %d, want 2 and 5", np.Depth, len(np.Stmts))
	}
}

// hydroSrc is the Hydro kernel of Figure 8 in source form (statement
// structure identical to the paper's listing).
const hydroSrc = `
      PROGRAM HYDRO
      REAL*8 ZA, ZP, ZQ, ZR, ZM, ZB, ZU, ZV, ZZ
      DIMENSION ZA(JN1,KN1), ZP(JN1,KN1), ZQ(JN1,KN1), ZR(JN1,KN1)
      DIMENSION ZM(JN1,KN1), ZB(JN1,KN1), ZU(JN1,KN1), ZV(JN1,KN1)
      DIMENSION ZZ(JN1,KN1)
      T = 0.003700
      S = 0.004100
      DO K = 2, KN
        DO J = 2, JN
          ZA(J,K) = (ZP(J-1,K+1)+ZQ(J-1,K+1)-ZP(J-1,K)-ZQ(J-1,K))
     &      *(ZR(J,K)+ZR(J-1,K))/(ZM(J-1,K)+ZM(J-1,K+1))
          ZB(J,K) = (ZP(J-1,K)+ZQ(J-1,K)-ZP(J,K)-ZQ(J,K))
     &      *(ZR(J,K)+ZR(J,K-1))/(ZM(J,K)+ZM(J-1,K))
        ENDDO
      ENDDO
      DO K = 2, KN
        DO J = 2, JN
          ZU(J,K) = ZU(J,K) + S*(ZA(J,K)*(ZZ(J,K)-ZZ(J+1,K))
     &      -ZA(J-1,K)*(ZZ(J-1,K))
     &      -ZB(J,K)*(ZZ(J,K-1))+ZB(J,K+1)*(ZZ(J,K+1)))
          ZV(J,K) = ZV(J,K) + S*(ZA(J,K)*(ZR(J,K)-ZR(J+1,K))
     &      -ZA(J-1,K)*(ZR(J-1,K))
     &      -ZB(J,K)*(ZR(J,K-1))+ZB(J,K+1)*(ZR(J,K+1)))
        ENDDO
      ENDDO
      DO K = 2, KN
        DO J = 2, JN
          ZR(J,K) = ZR(J,K) + T*ZU(J,K)
          ZZ(J,K) = ZZ(J,K) + T*ZV(J,K)
        ENDDO
      ENDDO
      END
`

// TestParsedHydroMatchesBuilder: the parsed Hydro source must produce
// exactly the address stream of the builder-constructed kernel. The source
// above spells each distinct reference once (the duplicated ZZ(J,K) /
// ZR(J,K) reads of the original expression are register-allocated, as in
// internal/kernels).
func TestParsedHydroMatchesBuilder(t *testing.T) {
	const n = 10
	parsed, err := Parse(hydroSrc, map[string]int64{
		"JN": n, "KN": n, "JN1": n + 1, "KN1": n + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := stream(t, kernels.Hydro(n, n))
	got := stream(t, parsed)
	if len(got) != len(want) {
		t.Fatalf("stream length %d, builder %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("address %d: parsed %d, builder %d", i, got[i], want[i])
		}
	}
}

// mmtSrc is the MMT kernel of Figure 8 with labelled shared-terminator DO
// loops exercised in the MGRID style.
const mmtSrc = `
      PROGRAM MMT
      REAL*8 A, B, D, WB
      DIMENSION A(N,N), B(N,N), D(N,N), WB(N,N)
      DO J2 = 1, N, BJ
        DO K2 = 1, N, BK
          DO J = J2, J2+BJ-1
            DO K = K2, K2+BK-1
              WB(J-J2+1,K-K2+1) = B(K,J)
            ENDDO
          ENDDO
          DO I = 1, N
            DO K = K2, K2+BK-1
              RA = A(I,K)
              DO J = J2, J2+BJ-1
                D(I,J) = D(I,J) + WB(J-J2+1,K-K2+1)*RA
              ENDDO
            ENDDO
          ENDDO
        ENDDO
      ENDDO
      END
`

func TestParsedMMTMatchesBuilder(t *testing.T) {
	parsed, err := Parse(mmtSrc, map[string]int64{"N": 16, "BJ": 8, "BK": 8})
	if err != nil {
		t.Fatal(err)
	}
	want := stream(t, kernels.MMT(16, 8, 8))
	got := stream(t, parsed)
	if len(got) != len(want) {
		t.Fatalf("stream length %d, builder %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("address %d: parsed %d, builder %d", i, got[i], want[i])
		}
	}
}

// stream prepares a program and returns its byte address stream.
func stream(t *testing.T, p *ir.Program) []int64 {
	t.Helper()
	flat, _, err := inline.Flatten(p, inline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		t.Fatal(err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		t.Fatal(err)
	}
	var out []int64
	trace.Execute(np, func(r *ir.NRef, idx []int64) bool {
		out = append(out, r.AddressAt(idx))
		return true
	})
	return out
}

// TestLabelledSharedTerminators: the classic "DO 400 ... DO 400 ... 400
// CONTINUE" nesting of MGRID's listing.
func TestLabelledSharedTerminators(t *testing.T) {
	src := `
      PROGRAM NEST
      REAL*8 U(20,20)
      DO 400 I = 1, 3
      DO 400 J = 1, 3
        U(I,J) = U(I,J)
  400 CONTINUE
      END
`
	p, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := stream(t, p)
	if len(got) != 3*3*2 {
		t.Fatalf("accesses = %d, want 18", len(got))
	}
}

func TestLogicalIfAndBlockIf(t *testing.T) {
	src := `
      PROGRAM G
      REAL*8 A(10)
      DO I = 1, 10
        IF (I .EQ. 5) A(I) = X
        IF (I .GE. 8) THEN
          A(I) = X
        ENDIF
      ENDDO
      END
`
	p, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := stream(t, p); len(got) != 1+3 {
		t.Fatalf("accesses = %d, want 4", len(got))
	}
}

func TestParseCalls(t *testing.T) {
	src := `
      PROGRAM M
      REAL*8 A(8,8)
      DO I = 1, 4
        CALL F(A, A(1,I))
      ENDDO
      END
      SUBROUTINE F(C, V)
      REAL*8 C(8,8), V(8)
      DO J = 1, 4
        C(J,1) = V(J)
      ENDDO
      END
`
	p, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := inline.ClassifyProgram(p)
	if st.Calls != 1 || st.Inlined != 1 || st.PAble != 2 {
		t.Errorf("classification: %+v", st)
	}
	if got := stream(t, p); len(got) != 4*4*2 {
		t.Fatalf("accesses = %d, want 32", len(got))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"      PROGRAM P\n      REAL*8 A(10)\n      DO I = 1, 10\n      END\n",            // missing ENDDO
		"      PROGRAM P\n      REAL*8 A(10)\n      A(I*J) = 1\n      END\n",              // non-affine
		"      PROGRAM P\n      IF (I .EQ. 1) THEN\n      ELSE\n      ENDIF\n      END\n", // ELSE
	}
	for i, src := range cases {
		if _, err := Parse(src, nil); err == nil {
			t.Errorf("case %d: expected a parse error", i)
		}
	}
}

func TestParameterStatement(t *testing.T) {
	src := `
      PROGRAM P
      PARAMETER (N = 6, M = N + 2)
      REAL*8 A(M)
      DO I = 1, N
        A(I) = A(I)
      ENDDO
      END
`
	p, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := stream(t, p); len(got) != 12 {
		t.Fatalf("accesses = %d, want 12", len(got))
	}
	if p.Main.Locals[0].Dims[0] != 8 {
		t.Errorf("A dims = %v, want (8)", p.Main.Locals[0].Dims)
	}
}

func TestNegativeStepLoop(t *testing.T) {
	src := `
      PROGRAM P
      REAL*8 A(10)
      DO I = 9, 2, -1
        A(I) = A(I+1)
      ENDDO
      END
`
	p, err := Parse(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := stream(t, p); len(got) != 16 {
		t.Fatalf("accesses = %d, want 16", len(got))
	}
}

// TestIfGotoConversion: the paper converts Swim's and Tomcatv's outer
// IF-GOTO iteration into a DO statement with the trip count fixed from
// the reference input; ParseOptions.GotoTrips reproduces that.
func TestIfGotoConversion(t *testing.T) {
	src := `
      PROGRAM P
      REAL*8 A(10)
   90 CONTINUE
      DO I = 1, 10
        A(I) = A(I)
      ENDDO
      IF (DELTA .GT. EPS) GOTO 90
      END
`
	p, err := ParseOptions(src, Options{GotoTrips: map[string]int64{"90": 5}})
	if err != nil {
		t.Fatal(err)
	}
	if got := stream(t, p); len(got) != 5*10*2 {
		t.Fatalf("accesses = %d, want 100 (5 converted iterations)", len(got))
	}
}

// TestIfGotoWithoutTripsRejected: a data-dependent IF-GOTO loop without a
// fixed trip count must be a parse error, not a silent drop.
func TestIfGotoWithoutTripsRejected(t *testing.T) {
	src := `
      PROGRAM P
      REAL*8 A(10)
   90 CONTINUE
      A(1) = A(2)
      IF (X .GT. Y) GOTO 90
      END
`
	if _, err := Parse(src, nil); err == nil {
		t.Fatal("expected error for unfixed IF-GOTO loop")
	}
}

// TestForwardGotoRejected: forward control transfer is outside the model.
func TestForwardGotoRejected(t *testing.T) {
	src := `
      PROGRAM P
      REAL*8 A(10)
      GOTO 90
      A(1) = A(2)
   90 CONTINUE
      END
`
	if _, err := Parse(src, nil); err == nil {
		t.Fatal("expected error for forward GOTO")
	}
}

// TestBareBackwardGoto: an unconditional backward GOTO also converts
// (infinite loops fixed to a trip count).
func TestBareBackwardGoto(t *testing.T) {
	src := `
      PROGRAM P
      REAL*8 A(4)
   10 A(1) = A(2)
      GOTO 10
      END
`
	p, err := ParseOptions(src, Options{GotoTrips: map[string]int64{"10": 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := stream(t, p); len(got) != 3*2 {
		t.Fatalf("accesses = %d, want 6", len(got))
	}
}
