package fparse

import (
	"fmt"
	"strings"

	"cachemodel/internal/ir"
)

// Print renders a program back into the FORTRAN subset this package
// parses. For any program the parser itself produced, the output reparses
// to an equivalent program and printing is a fixpoint:
// Print(parse(Print(parse(src)))) == Print(parse(src)) — the property the
// round-trip fuzz target asserts. Names are emitted uppercase (the lexer
// normalises case), loops use the DO/ENDDO form regardless of how they
// were written, registered scalars are gone (they live in registers), and
// assignments whose target was a scalar print with a synthetic sink
// variable on the left.
func Print(p *ir.Program) string {
	var b strings.Builder
	for _, name := range p.Order {
		printUnit(&b, p.Subs[name], p.Subs[name] == p.Main)
	}
	return b.String()
}

func printUnit(b *strings.Builder, s *ir.Subroutine, main bool) {
	kw := "SUBROUTINE"
	if main {
		kw = "PROGRAM"
	}
	fmt.Fprintf(b, "      %s %s", kw, strings.ToUpper(s.Name))
	if len(s.Formals) > 0 {
		names := make([]string, len(s.Formals))
		for i, a := range s.Formals {
			names[i] = strings.ToUpper(a.Name)
		}
		fmt.Fprintf(b, "(%s)", strings.Join(names, ", "))
	}
	b.WriteByte('\n')
	for _, a := range s.Arrays() {
		elem := "REAL*8"
		if a.ElemSize == 4 {
			elem = "REAL*4"
		}
		fmt.Fprintf(b, "      %s %s%s\n", elem, strings.ToUpper(a.Name), dimList(a))
	}
	sink := sinkName(s)
	for _, n := range s.Body {
		printNode(b, n, 6, sink)
	}
	b.WriteString("      END\n")
}

func dimList(a *ir.Array) string {
	if a.Rank() == 0 {
		return ""
	}
	parts := make([]string, len(a.Dims))
	for i, d := range a.Dims {
		if d > 0 {
			parts[i] = fmt.Sprintf("%d", d)
		} else {
			parts[i] = "*"
		}
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// sinkName picks a scalar name that cannot collide with any array of the
// unit, for printing assignments whose original target was a scalar.
func sinkName(s *ir.Subroutine) string {
	used := map[string]bool{}
	for _, a := range s.Arrays() {
		used[strings.ToUpper(a.Name)] = true
	}
	name := "SINK"
	for i := 0; used[name]; i++ {
		name = fmt.Sprintf("SINK%d", i)
	}
	return name
}

func printNode(b *strings.Builder, n ir.Node, indent int, sink string) {
	pad := strings.Repeat(" ", indent)
	switch v := n.(type) {
	case *ir.Loop:
		fmt.Fprintf(b, "%sDO %s = %s, %s", pad, strings.ToUpper(v.Var), v.Lo, v.Hi)
		if v.Step != 0 && v.Step != 1 {
			fmt.Fprintf(b, ", %d", v.Step)
		}
		b.WriteByte('\n')
		for _, c := range v.Body {
			printNode(b, c, indent+2, sink)
		}
		fmt.Fprintf(b, "%sENDDO\n", pad)
	case *ir.If:
		if len(v.Conds) == 0 {
			for _, c := range v.Body {
				printNode(b, c, indent, sink)
			}
			return
		}
		conds := make([]string, len(v.Conds))
		for i, c := range v.Conds {
			conds[i] = c.String()
		}
		fmt.Fprintf(b, "%sIF (%s) THEN\n", pad, strings.Join(conds, " .AND. "))
		for _, c := range v.Body {
			printNode(b, c, indent+2, sink)
		}
		fmt.Fprintf(b, "%sENDIF\n", pad)
	case *ir.Assign:
		lhs := sink
		if v.LHS != nil {
			lhs = refString(v.LHS)
		}
		rhs := "0"
		if len(v.Reads) > 0 {
			parts := make([]string, len(v.Reads))
			for i, r := range v.Reads {
				parts[i] = refString(r)
			}
			rhs = strings.Join(parts, " + ")
		}
		fmt.Fprintf(b, "%s%s = %s\n", pad, lhs, rhs)
	case *ir.Call:
		fmt.Fprintf(b, "%sCALL %s", pad, strings.ToUpper(v.Callee))
		if len(v.Args) > 0 {
			parts := make([]string, len(v.Args))
			for i, a := range v.Args {
				parts[i] = strings.ToUpper(a.Array.Name)
				if len(a.Subs) > 0 {
					parts[i] += "(" + exprList(a.Subs) + ")"
				}
			}
			fmt.Fprintf(b, "(%s)", strings.Join(parts, ", "))
		}
		b.WriteByte('\n')
	}
}

func refString(r *ir.Ref) string {
	name := strings.ToUpper(r.Array.Name)
	if len(r.Subs) == 0 {
		return name
	}
	return name + "(" + exprList(r.Subs) + ")"
}

func exprList(es []ir.Expr) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, ", ")
}
