// Package fparse is a front end for the FORTRAN subset of the paper's
// program model: PROGRAM/SUBROUTINE units, REAL*8 and DIMENSION
// declarations, DO loops (with optional statement labels and CONTINUE
// terminators), block and logical IF statements with affine conditions,
// CALL statements and assignments with affine subscripts. It produces the
// same ir.Program structures as the Go builder API, so parsed programs
// flow through inlining, normalisation, analysis and simulation
// unchanged.
//
// Scalar variables are recognised and register-allocated: reads of
// scalars disappear from the reference stream and assignments to scalars
// contribute only their right-hand-side array references — matching how
// the paper's Opts component lowers programs (e.g. MMT's RA).
package fparse

import (
	"fmt"
	"strings"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent
	tokNumber
	tokPunct // ( ) , = + - * / :
	tokRelop // .EQ. .NE. .LE. .LT. .GE. .GT. .AND. .OR. .NOT. .TRUE. .FALSE.
	tokString
)

type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokNewline:
		return "end of line"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex splits FORTRAN-ish source into tokens. Comment lines start with C,
// c, * or ! in column 1, or use ! anywhere. Continuation is a trailing
// '&' or a '&'/'$' in column 6 of the next line (both styles accepted).
func lex(src string) ([]token, error) {
	var toks []token
	lines := strings.Split(src, "\n")
	for li := 0; li < len(lines); li++ {
		raw := lines[li]
		line := raw
		// Full-line comments.
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if c := line[0]; c == 'C' || c == 'c' || c == '*' || c == '!' {
			continue
		}
		// Fixed-form continuation marker in column 6.
		if len(line) >= 6 && line[5] != ' ' && line[5] != '\t' && strings.TrimSpace(line[:5]) == "" {
			// Continuation of the previous line: drop the trailing newline
			// token if present.
			if len(toks) > 0 && toks[len(toks)-1].kind == tokNewline {
				toks = toks[:len(toks)-1]
			}
			line = "      " + line[6:]
		}
		// Inline comments.
		if i := strings.IndexByte(line, '!'); i >= 0 {
			line = line[:i]
		}
		cont := false
		if t := strings.TrimSpace(line); strings.HasSuffix(t, "&") {
			cont = true
			line = strings.TrimSuffix(strings.TrimRight(line, " \t"), "&")
		}
		lineToks, err := lexLine(line, li+1)
		if err != nil {
			return nil, err
		}
		toks = append(toks, lineToks...)
		if !cont && len(lineToks) > 0 {
			toks = append(toks, token{kind: tokNewline, line: li + 1})
		}
	}
	toks = append(toks, token{kind: tokEOF, line: len(lines)})
	return toks, nil
}

func lexLine(line string, lineNo int) ([]token, error) {
	var toks []token
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			i++
		case c == '.':
			// Dotted operator (.EQ. etc) or a real literal like .5 — the
			// program model has no float expressions we keep, but accept
			// and skip real literals in ignored contexts.
			j := i + 1
			for j < len(line) && (isAlpha(line[j])) {
				j++
			}
			if j < len(line) && line[j] == '.' && j > i+1 {
				toks = append(toks, token{kind: tokRelop, text: strings.ToUpper(line[i : j+1]), line: lineNo, col: i})
				i = j + 1
				break
			}
			// Real literal fraction: consume digits.
			j = i + 1
			for j < len(line) && (isDigit(line[j]) || isAlpha(line[j])) {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: line[i:j], line: lineNo, col: i})
			i = j
		case isDigit(c):
			j := i
			for j < len(line) && (isDigit(line[j]) || line[j] == '.' ||
				((line[j] == 'D' || line[j] == 'E' || line[j] == 'd' || line[j] == 'e') && j+1 < len(line) && (isDigit(line[j+1]) || line[j+1] == '+' || line[j+1] == '-')) ||
				((line[j] == '+' || line[j] == '-') && j > i && (line[j-1] == 'D' || line[j-1] == 'E' || line[j-1] == 'd' || line[j-1] == 'e'))) {
				j++
			}
			toks = append(toks, token{kind: tokNumber, text: line[i:j], line: lineNo, col: i})
			i = j
		case isAlpha(c) || c == '_':
			j := i
			for j < len(line) && (isAlpha(line[j]) || isDigit(line[j]) || line[j] == '_' || line[j] == '$') {
				j++
			}
			word := line[i:j]
			// REAL*8 is one keyword unit: merge the *8 suffix.
			if strings.EqualFold(word, "REAL") && j+1 < len(line) && line[j] == '*' && isDigit(line[j+1]) {
				k := j + 1
				for k < len(line) && isDigit(line[k]) {
					k++
				}
				word = line[i:k]
				j = k
			}
			toks = append(toks, token{kind: tokIdent, text: strings.ToUpper(word), line: lineNo, col: i})
			i = j
		case c == '\'' || c == '"':
			j := i + 1
			for j < len(line) && line[j] != c {
				j++
			}
			if j >= len(line) {
				return nil, &ParseError{Line: lineNo, Col: i + 1, Msg: "unterminated string"}
			}
			toks = append(toks, token{kind: tokString, text: line[i+1 : j], line: lineNo, col: i})
			i = j + 1
		case strings.IndexByte("(),=+-*/:", c) >= 0:
			// ** exponent: lex as one token to reject cleanly later.
			if c == '*' && i+1 < len(line) && line[i+1] == '*' {
				toks = append(toks, token{kind: tokPunct, text: "**", line: lineNo, col: i})
				i += 2
				break
			}
			if c == '=' && i+1 < len(line) && line[i+1] == '=' {
				toks = append(toks, token{kind: tokRelop, text: ".EQ.", line: lineNo, col: i})
				i += 2
				break
			}
			toks = append(toks, token{kind: tokPunct, text: string(c), line: lineNo, col: i})
			i++
		case c == '<' || c == '>':
			if i+1 < len(line) && line[i+1] == '=' {
				toks = append(toks, token{kind: tokRelop, text: map[byte]string{'<': ".LE.", '>': ".GE."}[c], line: lineNo, col: i})
				i += 2
			} else {
				toks = append(toks, token{kind: tokRelop, text: map[byte]string{'<': ".LT.", '>': ".GT."}[c], line: lineNo, col: i})
				i++
			}
		case c == '=' && i+1 < len(line) && line[i+1] == '=':
			toks = append(toks, token{kind: tokRelop, text: ".EQ.", line: lineNo, col: i})
			i += 2
		default:
			return nil, &ParseError{Line: lineNo, Col: i + 1, Msg: fmt.Sprintf("unexpected character %q", rune(c))}
		}
	}
	return toks, nil
}

// isAlpha accepts ASCII letters only: treating high bytes as Latin-1
// letters would admit identifiers that are invalid UTF-8, which the
// printer cannot render back losslessly.
func isAlpha(c byte) bool { return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
