package poly

import (
	"fmt"

	"cachemodel/internal/ir"
	"cachemodel/internal/linalg"
	"cachemodel/internal/qpoly"
)

// This file generalises the lattice-point counting engine to bounds and
// guards that are affine in one symbolic parameter n (the problem size):
// instead of a number, a count becomes a piecewise quasi-polynomial of n
// (Ehrhart). The counts are recovered by exact rational interpolation —
// instantiate the space at enough sample sizes per residue class of the
// coefficient period, fit with qpoly.FitPoly, and verify the fit against
// further samples — rather than by a full Barvinok decomposition: the
// spaces here are tiny (depth ≤ 6), so sampled instantiation is cheap and
// the verification step keeps the result trustworthy.

// ParamAffine is an affine form over the loop indices plus a symbolic
// parameter: value(idx, n) = Base(idx) + N·n.
type ParamAffine struct {
	Base ir.Affine
	N    int64
}

// At instantiates the form at parameter value n.
func (pa ParamAffine) At(n int64) ir.Affine { return pa.Base.AddConst(pa.N * n) }

// IsParam reports whether the form actually depends on the parameter.
func (pa ParamAffine) IsParam() bool { return pa.N != 0 }

// ParamBound is a loop-bound pair affine in the parameter.
type ParamBound struct {
	Lo, Hi ParamAffine
}

// ParamConstraint is Expr ≥ 0 (or == 0 when IsEq) with Expr affine in the
// parameter.
type ParamConstraint struct {
	Expr ParamAffine
	IsEq bool
}

// At instantiates the constraint at parameter value n.
func (pc ParamConstraint) At(n int64) ir.NConstraint {
	return ir.NConstraint{Expr: pc.Expr.At(n), IsEq: pc.IsEq}
}

// ParamSpace is an iteration space whose bounds and guards are affine in
// one symbolic parameter.
type ParamSpace struct {
	Depth  int
	Bounds []ParamBound
	Guards []ParamConstraint
}

// NewParamSpace builds a ParamSpace (depth = len(bounds)).
func NewParamSpace(bounds []ParamBound, guards []ParamConstraint) *ParamSpace {
	return &ParamSpace{Depth: len(bounds), Bounds: bounds, Guards: guards}
}

// At instantiates the space at parameter value n.
func (ps *ParamSpace) At(n int64) *Space {
	bounds := make([]ir.NBound, len(ps.Bounds))
	for i, b := range ps.Bounds {
		bounds[i] = ir.NBound{Lo: b.Lo.At(n), Hi: b.Hi.At(n)}
	}
	guards := make([]ir.NConstraint, len(ps.Guards))
	for i, g := range ps.Guards {
		guards[i] = g.At(n)
	}
	return New(bounds, guards)
}

// FitOptions tunes parametric counting. The zero value asks for automatic
// choices throughout.
type FitOptions struct {
	// Period is the initial coefficient-period guess; 0 derives it from
	// the index coefficients. A failing verification doubles it.
	Period int64
	// Degree bounds the per-residue polynomial degree; 0 uses the space
	// depth (the Ehrhart maximum).
	Degree int
	// MinN is the smallest parameter value the result must cover
	// (default 1). Sizes in [MinN, fit window) are covered by explicit
	// per-point chambers.
	MinN int64
	// FitN is the start of the polynomial tail chamber; 0 derives it from
	// the constants (all chamber breakpoints lie below it). A failing
	// verification doubles it.
	FitN int64
	// Verify is the number of extra holdout samples per residue class that
	// the fitted polynomial must reproduce exactly (default 2).
	Verify int
}

// Caps for the escalation loop: beyond these the space is declared
// non-quasi-polynomial over the sampled range.
const (
	maxFitPeriod = 256
	maxFitBase   = 1 << 13
	maxSmallN    = 1 << 12 // explicit per-point chambers below the tail
)

func (o FitOptions) withDefaults(ps *ParamSpace) FitOptions {
	if o.MinN == 0 {
		o.MinN = 1
	}
	if o.Verify == 0 {
		o.Verify = 2
	}
	if o.Degree == 0 {
		o.Degree = ps.Depth
	}
	if o.Period == 0 {
		o.Period = ps.autoPeriod()
	}
	if o.FitN == 0 {
		o.FitN = ps.autoFitBase(o)
	}
	return o
}

// autoPeriod guesses the coefficient period: quasi-periodic behaviour
// enters through floor/ceil divisions by index coefficients, so the lcm
// of their magnitudes (capped) is the natural first guess.
func (ps *ParamSpace) autoPeriod() int64 {
	p := int64(1)
	acc := func(a ir.Affine) {
		for d := 1; d <= a.MaxDepthUsed(); d++ {
			if c := a.At(d); c != 0 {
				if l := linalg.LCM(p, c); l != 0 && l <= maxFitPeriod {
					p = l
				}
			}
		}
	}
	for _, b := range ps.Bounds {
		acc(b.Lo.Base)
		acc(b.Hi.Base)
	}
	for _, g := range ps.Guards {
		acc(g.Expr.Base)
	}
	return p
}

// autoFitBase places the polynomial tail beyond the chamber breakpoints,
// which are governed by the affine constants: past max|const| (plus a
// period of slack) the relative order of the bound expressions is fixed.
func (ps *ParamSpace) autoFitBase(o FitOptions) int64 {
	var m int64
	acc := func(pa ParamAffine) {
		if c := abs(pa.Base.Const); c > m {
			m = c
		}
	}
	for _, b := range ps.Bounds {
		acc(b.Lo)
		acc(b.Hi)
	}
	for _, g := range ps.Guards {
		acc(g.Expr)
	}
	base := 2*m + 2*o.Period + int64(ps.Depth) + 2
	if base < o.MinN {
		base = o.MinN
	}
	return base
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// CountPoly returns the tile's point count as a piecewise quasi-polynomial
// of the parameter, valid for every n ≥ opt.MinN.
func (ps *ParamSpace) CountPoly(t Tile, opt FitOptions) (qpoly.Piecewise, error) {
	return ps.fit(func(n int64) int64 { return ps.At(n).CountTile(t) }, opt)
}

// CountWithPoly is the parametric CountWith: the count of tile points
// additionally satisfying every constraint in extra, as a piecewise
// quasi-polynomial of the parameter.
func (ps *ParamSpace) CountWithPoly(t Tile, extra []ParamConstraint, opt FitOptions) (qpoly.Piecewise, error) {
	return ps.fit(func(n int64) int64 {
		sys := make([]ir.NConstraint, len(extra))
		for i, g := range extra {
			sys[i] = g.At(n)
		}
		return ps.At(n).CountWith(t, sys)
	}, opt)
}

// CountUnionPoly is the parametric CountUnion: the count of tile points
// satisfying at least one of the constraint systems.
func (ps *ParamSpace) CountUnionPoly(t Tile, systems [][]ParamConstraint, opt FitOptions) (qpoly.Piecewise, error) {
	return ps.fit(func(n int64) int64 {
		inst := make([][]ir.NConstraint, len(systems))
		for i, sys := range systems {
			cs := make([]ir.NConstraint, len(sys))
			for j, g := range sys {
				cs[j] = g.At(n)
			}
			inst[i] = cs
		}
		return ps.At(n).CountUnion(t, inst)
	}, opt)
}

// fit recovers eval as a piecewise quasi-polynomial: a polynomial tail
// chamber fitted per residue class and verified against holdout samples,
// plus explicit per-point chambers covering the small sizes below the
// tail. A verification failure escalates — first pushing the tail start
// outward (the breakpoint guess was too low), then doubling the period —
// before giving up.
func (ps *ParamSpace) fit(eval func(n int64) int64, opt FitOptions) (qpoly.Piecewise, error) {
	opt = opt.withDefaults(ps)
	period, fitN := opt.Period, opt.FitN
	var lastErr error
	for {
		q, err := fitTail(eval, period, opt.Degree, fitN, opt.Verify)
		if err == nil {
			return assemble(eval, q, opt.MinN, fitN)
		}
		lastErr = err
		switch {
		case fitN < maxFitBase:
			fitN *= 2
		case period < maxFitPeriod:
			period *= 2
			fitN = opt.FitN
		default:
			return qpoly.Piecewise{}, fmt.Errorf("poly: count is not quasi-polynomial up to period %d, base %d: %w",
				period, fitN, lastErr)
		}
	}
}

// fitTail fits one quasi-polynomial with the given period and degree from
// samples at the first deg+1+verify sizes ≥ fitN of every residue class.
func fitTail(eval func(n int64) int64, period int64, deg int, fitN int64, verify int) (qpoly.QPoly, error) {
	var samples []qpoly.Sample
	for r := int64(0); r < period; r++ {
		n := fitN + mod(r-fitN, period)
		for k := 0; k < deg+1+verify; k++ {
			samples = append(samples, qpoly.Sample{N: n, V: linalg.RatInt(eval(n))})
			n += period
		}
	}
	return qpoly.Fit(period, deg, samples)
}

func mod(n, m int64) int64 {
	r := n % m
	if r < 0 {
		r += m
	}
	return r
}

// assemble glues the verified tail to explicit per-point chambers for the
// small sizes the fit window does not cover.
func assemble(eval func(n int64) int64, tail qpoly.QPoly, minN, fitN int64) (qpoly.Piecewise, error) {
	if fitN-minN > maxSmallN {
		return qpoly.Piecewise{}, fmt.Errorf("poly: %d explicit small sizes exceed the cap %d",
			fitN-minN, maxSmallN)
	}
	pieces := []qpoly.Piece{{Lo: fitN, Hi: qpoly.Inf, Poly: tail}}
	for n := minN; n < fitN; n++ {
		pieces = append(pieces, qpoly.Piece{Lo: n, Hi: n, Poly: qpoly.ConstInt(eval(n))})
	}
	pw, err := qpoly.FromPieces(pieces)
	if err != nil {
		return qpoly.Piecewise{}, err
	}
	return pw.Canon(), nil
}
