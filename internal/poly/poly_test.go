package poly

import (
	"math/rand"
	"testing"

	"cachemodel/internal/ir"
)

func bound(lo, hi ir.Affine) ir.NBound { return ir.NBound{Lo: lo, Hi: hi} }

func konst(c int64) ir.Affine { return ir.AffineConst(c) }

func rect(dims ...[2]int64) *Space {
	var bs []ir.NBound
	for _, d := range dims {
		bs = append(bs, bound(konst(d[0]), konst(d[1])))
	}
	return New(bs, nil)
}

func TestRectVolume(t *testing.T) {
	sp := rect([2]int64{1, 10}, [2]int64{2, 5}, [2]int64{1, 1})
	if got := sp.Volume(); got != 40 {
		t.Errorf("volume = %d, want 40", got)
	}
}

func TestTriangularVolume(t *testing.T) {
	// I1 in 1..n, I2 in I1..n: n(n+1)/2.
	n := int64(12)
	sp := New([]ir.NBound{
		bound(konst(1), konst(n)),
		bound(ir.AffineIndex(1), konst(n)),
	}, nil)
	if got, want := sp.Volume(), n*(n+1)/2; got != want {
		t.Errorf("volume = %d, want %d", got, want)
	}
}

func TestGuardedVolume(t *testing.T) {
	// 1..10 × 1..10 with guard I2 == I1: the diagonal.
	sp := New([]ir.NBound{
		bound(konst(1), konst(10)),
		bound(konst(1), konst(10)),
	}, []ir.NConstraint{{Expr: ir.Affine{Coeff: []int64{-1, 1}}, IsEq: true}})
	if got := sp.Volume(); got != 10 {
		t.Errorf("volume = %d, want 10", got)
	}
}

func TestInequalityGuardVolume(t *testing.T) {
	// 1..10 × 1..10 with I1 + I2 <= 6, i.e. 6 − I1 − I2 >= 0.
	sp := New([]ir.NBound{
		bound(konst(1), konst(10)),
		bound(konst(1), konst(10)),
	}, []ir.NConstraint{{Expr: ir.Affine{Const: 6, Coeff: []int64{-1, -1}}}})
	// I1=1: I2 in 1..5; I1=2: 1..4; ... I1=5: 1..1 → 5+4+3+2+1 = 15.
	if got := sp.Volume(); got != 15 {
		t.Errorf("volume = %d, want 15", got)
	}
}

func TestEmptySpace(t *testing.T) {
	sp := rect([2]int64{5, 4})
	if got := sp.Volume(); got != 0 {
		t.Errorf("volume = %d, want 0", got)
	}
	if sp.Contains([]int64{5}) {
		t.Error("Contains on empty space")
	}
	if pts := sp.Sample(rand.New(rand.NewSource(1)), 3); len(pts) != 0 {
		t.Errorf("sampled %d points from empty space", len(pts))
	}
}

func TestEnumerateLexOrder(t *testing.T) {
	sp := New([]ir.NBound{
		bound(konst(1), konst(3)),
		bound(ir.AffineIndex(1), konst(3)),
	}, nil)
	var got [][2]int64
	sp.Enumerate(func(idx []int64) bool {
		got = append(got, [2]int64{idx[0], idx[1]})
		return true
	})
	want := [][2]int64{{1, 1}, {1, 2}, {1, 3}, {2, 2}, {2, 3}, {3, 3}}
	if len(got) != len(want) {
		t.Fatalf("points = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d = %v, want %v", i, got[i], want[i])
		}
	}
	if int64(len(got)) != sp.Volume() {
		t.Errorf("enumeration %d != volume %d", len(got), sp.Volume())
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	sp := rect([2]int64{1, 100})
	n := 0
	sp.Enumerate(func(idx []int64) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("visited %d, want 5", n)
	}
}

// TestVolumeMatchesEnumeration: property check on random spaces — the
// fast suffix-product volume must equal brute-force enumeration.
func TestVolumeMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		depth := 1 + rng.Intn(3)
		var bs []ir.NBound
		for d := 0; d < depth; d++ {
			lo := ir.Affine{Const: int64(1 + rng.Intn(3))}
			hi := ir.Affine{Const: int64(3 + rng.Intn(6))}
			if d > 0 && rng.Intn(2) == 0 {
				// Make the bound depend on an outer index.
				c := make([]int64, d)
				c[rng.Intn(d)] = 1
				lo = ir.Affine{Const: 0, Coeff: c}
			}
			bs = append(bs, bound(lo, hi))
		}
		var gs []ir.NConstraint
		if rng.Intn(2) == 0 {
			c := make([]int64, depth)
			c[rng.Intn(depth)] = 1
			gs = append(gs, ir.NConstraint{Expr: ir.Affine{Const: -2, Coeff: c}}) // I_d >= 2
		}
		sp := New(bs, gs)
		var brute int64
		sp.Enumerate(func([]int64) bool { brute++; return true })
		if got := sp.Volume(); got != brute {
			t.Fatalf("trial %d: volume %d != enumeration %d (bounds %v)", trial, got, brute, bs)
		}
	}
}

// TestSampleUniformity: sampling a triangular space must cover it roughly
// uniformly — each half of the space receives close to its share.
func TestSampleUniformity(t *testing.T) {
	n := int64(20)
	sp := New([]ir.NBound{
		bound(konst(1), konst(n)),
		bound(ir.AffineIndex(1), konst(n)),
	}, nil)
	rng := rand.New(rand.NewSource(7))
	const draws = 20000
	pts := sp.Sample(rng, draws)
	if len(pts) != draws {
		t.Fatalf("sampled %d of %d", len(pts), draws)
	}
	// P(I1 <= 7) = (20+19+...+14)/210 = 119/210 ≈ 0.5667.
	low := 0
	for _, p := range pts {
		if !sp.Contains(p) {
			t.Fatalf("sampled point %v outside space", p)
		}
		if p[0] <= 7 {
			low++
		}
	}
	got := float64(low) / draws
	if got < 0.53 || got > 0.61 {
		t.Errorf("P(I1<=7) estimated %.3f, want ≈ 0.567", got)
	}
}

// TestSampleSparseGuard: rejection gives way to exact conditional sampling
// on a diagonal (acceptance 1/n) and stays correct.
func TestSampleSparseGuard(t *testing.T) {
	n := int64(512)
	sp := New([]ir.NBound{
		bound(konst(1), konst(n)),
		bound(konst(1), konst(n)),
	}, []ir.NConstraint{{Expr: ir.Affine{Coeff: []int64{-1, 1}}, IsEq: true}})
	rng := rand.New(rand.NewSource(11))
	pts := sp.Sample(rng, 50)
	if len(pts) != 50 {
		t.Fatalf("sampled %d of 50", len(pts))
	}
	for _, p := range pts {
		if p[0] != p[1] {
			t.Fatalf("off-diagonal sample %v", p)
		}
	}
}

func TestBoundingBox(t *testing.T) {
	// I1 in 2..10, I2 in I1..I1+3 → box: I2 in 2..13.
	sp := New([]ir.NBound{
		bound(konst(2), konst(10)),
		bound(ir.AffineIndex(1), ir.AffineIndex(1).AddConst(3)),
	}, nil)
	lo, hi, ok := sp.BoundingBox()
	if !ok {
		t.Fatal("empty box")
	}
	if lo[1] != 2 || hi[1] != 13 {
		t.Errorf("I2 box = [%d, %d], want [2, 13]", lo[1], hi[1])
	}
}

func TestDivHelpers(t *testing.T) {
	if ceilDiv(7, 2) != 4 || ceilDiv(-7, 2) != -3 || ceilDiv(6, 3) != 2 {
		t.Error("ceilDiv broken")
	}
	if floorDiv(7, 2) != 3 || floorDiv(-7, 2) != -4 || floorDiv(-6, 3) != -2 {
		t.Error("floorDiv broken")
	}
}
