package poly

import (
	"testing"

	"cachemodel/internal/ir"
)

// FuzzQPolyVsEnumerate pins parametric counting to brute-force
// enumeration: a small random ParamSpace (depth ≤ 3, bounds affine in n
// with outer-index coupling, plus an optional guard with a non-unit
// coefficient to force genuine quasi-periodicity) is fitted once and then
// evaluated across a ladder of sizes — including non-powers of two and
// the boundary sizes around the explicit-chamber/tail seam — with every
// value compared against walking the instantiated space point by point.
func FuzzQPolyVsEnumerate(f *testing.F) {
	f.Add(uint8(2), int8(1), int8(0), uint8(1), int8(2), uint8(0))
	f.Add(uint8(3), int8(2), int8(-1), uint8(2), int8(3), uint8(1))
	f.Add(uint8(1), int8(1), int8(3), uint8(0), int8(1), uint8(2))
	f.Add(uint8(2), int8(1), int8(-2), uint8(3), int8(-1), uint8(3))

	f.Fuzz(func(t *testing.T, depthRaw uint8, nCoef, conRaw int8, couple uint8, gCoefRaw int8, gMode uint8) {
		depth := int(depthRaw%3) + 1
		nc := int64(nCoef%3) + 1       // Hi's n-coefficient: 1..3
		con := int64(conRaw % 4)       // Hi's constant: -3..3
		gCoef := int64(gCoefRaw%5) - 2 // guard coefficient on the deepest index

		bounds := make([]ParamBound, depth)
		for k := 0; k < depth; k++ {
			lo := ParamAffine{Base: ir.AffineConst(1)}
			if k > 0 && couple&(1<<(k-1)) != 0 {
				lo = ParamAffine{Base: ir.AffineIndex(k)} // I_k ≤ I_{k+1}: triangular
			}
			hi := ParamAffine{Base: ir.AffineConst(con), N: nc}
			bounds[k] = ParamBound{Lo: lo, Hi: hi}
		}
		var guards []ParamConstraint
		if gCoef != 0 && gMode%2 == 1 {
			// gCoef·I_depth ≤ n + 1  (or ≥, by sign): affine in n with a
			// non-unit index coefficient — the quasi-periodic case.
			g := ir.Affine{Const: 1, Coeff: make([]int64, depth)}
			g.Coeff[depth-1] = -gCoef
			guards = append(guards, ParamConstraint{Expr: ParamAffine{Base: g, N: 1}})
		}
		ps := NewParamSpace(bounds, guards)

		pw, err := ps.CountPoly(FullTile(), FitOptions{})
		if err != nil {
			// A degenerate family (e.g. always empty past the cap) is a
			// legitimate refusal, not a soundness bug.
			t.Skip(err)
		}
		lo, hi, _ := pw.Domain()
		if hi < lo {
			t.Fatalf("inverted domain [%d, %d]", lo, hi)
		}
		// The ladder: the seam around every chamber boundary, plus
		// non-power-of-two and larger spot sizes.
		ladder := []int64{1, 2, 3, 5, 6, 7, 9, 11, 13, 17, 23, 29, 31, 33, 40, 47, 63, 64, 65}
		for _, p := range pw.Pieces() {
			if p.Lo > 1 {
				ladder = append(ladder, p.Lo-1, p.Lo)
			}
		}
		for _, n := range ladder {
			if n > 70 { // keep brute force bounded
				continue
			}
			got, ok := pw.EvalInt(n)
			if !ok {
				t.Fatalf("n=%d not covered (domain [%d, %d])", n, lo, hi)
			}
			var want int64
			ps.At(n).Enumerate(func([]int64) bool { want++; return true })
			if got != want {
				t.Fatalf("n=%d: quasi-polynomial %d, enumeration %d (space %v)", n, got, want, bounds)
			}
		}
	})
}
