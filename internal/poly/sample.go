package poly

import (
	"math/rand"
)

// Sample draws n points uniformly at random from the space (with
// replacement). It first tries rejection sampling from the bounding box;
// when the acceptance rate is too low it falls back to exact conditional
// sampling driven by sub-volume counts, which is uniform by construction.
// It returns fewer than n points only if the space is empty.
//
// The returned points share one backing array, so a call costs O(1)
// allocations regardless of n; rejection trials draw into pooled scratch
// and only accepted points are copied out.
func (sp *Space) Sample(rng *rand.Rand, n int) [][]int64 {
	if sp.Volume() == 0 || n <= 0 {
		return nil
	}
	lo, hi, ok := sp.BoundingBox()
	if !ok {
		return nil
	}
	boxVol := int64(1)
	for k := range lo {
		boxVol *= hi[k] - lo[k] + 1
		if boxVol < 0 || boxVol > 1<<50 {
			boxVol = 1 << 50 // avoid overflow; rejection likely hopeless anyway
			break
		}
	}
	out := make([][]int64, 0, n)
	backing := make([]int64, n*sp.Depth)
	take := func(src []int64) {
		dst := backing[len(out)*sp.Depth : (len(out)+1)*sp.Depth]
		copy(dst, src)
		out = append(out, dst)
	}
	// Rejection phase: give up if acceptance appears worse than ~1/4096.
	ip := getIdx(sp.Depth)
	idx := *ip
	trials, accepted := 0, 0
	maxTrials := 4096 * (n + 16)
	for len(out) < n && trials < maxTrials {
		trials++
		for k := range idx {
			idx[k] = lo[k] + rng.Int63n(hi[k]-lo[k]+1)
		}
		if sp.Contains(idx) {
			accepted++
			take(idx)
		}
		// Periodically check whether rejection is hopeless.
		if trials == 2048 && accepted == 0 {
			break
		}
	}
	var weights []int64
	for len(out) < n {
		sp.conditionalSample(rng, idx, &weights)
		take(idx)
	}
	putIdx(ip)
	return out
}

// conditionalSample draws one exactly-uniform point into idx by choosing
// each index proportionally to the volume of the slice it induces. The
// weights buffer is reused (and grown) across levels and calls.
func (sp *Space) conditionalSample(rng *rand.Rand, idx []int64, weights *[]int64) {
	for i := range idx {
		idx[i] = 0
	}
	for k := 0; k < sp.Depth; k++ {
		lo, hi, ok := sp.rangeAt(k, idx)
		if !ok {
			// Should not happen while total volume > 0 and choices are
			// volume-weighted; defend anyway.
			return
		}
		// Total volume below this prefix.
		var total int64
		w := *weights
		if need := int(hi - lo + 1); cap(w) < need {
			w = make([]int64, need)
			*weights = w
		} else {
			w = w[:need]
		}
		for v := lo; v <= hi; v++ {
			idx[k] = v
			c := sp.count(k+1, idx)
			w[v-lo] = c
			total += c
		}
		if total == 0 {
			return
		}
		t := rng.Int63n(total)
		for v := lo; v <= hi; v++ {
			t -= w[v-lo]
			if t < 0 {
				idx[k] = v
				break
			}
		}
	}
}
