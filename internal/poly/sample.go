package poly

import (
	"math/rand"
)

// Sample draws n points uniformly at random from the space (with
// replacement). It first tries rejection sampling from the bounding box;
// when the acceptance rate is too low it falls back to exact conditional
// sampling driven by sub-volume counts, which is uniform by construction.
// It returns fewer than n points only if the space is empty.
func (sp *Space) Sample(rng *rand.Rand, n int) [][]int64 {
	if sp.Volume() == 0 || n <= 0 {
		return nil
	}
	lo, hi, ok := sp.BoundingBox()
	if !ok {
		return nil
	}
	boxVol := int64(1)
	for k := range lo {
		boxVol *= hi[k] - lo[k] + 1
		if boxVol < 0 || boxVol > 1<<50 {
			boxVol = 1 << 50 // avoid overflow; rejection likely hopeless anyway
			break
		}
	}
	out := make([][]int64, 0, n)
	// Rejection phase: give up if acceptance appears worse than ~1/4096.
	trials, accepted := 0, 0
	maxTrials := 4096 * (n + 16)
	for len(out) < n && trials < maxTrials {
		trials++
		idx := make([]int64, sp.Depth)
		for k := range idx {
			idx[k] = lo[k] + rng.Int63n(hi[k]-lo[k]+1)
		}
		if sp.Contains(idx) {
			accepted++
			out = append(out, idx)
		}
		// Periodically check whether rejection is hopeless.
		if trials == 2048 && accepted == 0 {
			break
		}
	}
	for len(out) < n {
		out = append(out, sp.conditionalSample(rng))
	}
	return out
}

// conditionalSample draws one exactly-uniform point by choosing each index
// proportionally to the volume of the slice it induces.
func (sp *Space) conditionalSample(rng *rand.Rand) []int64 {
	idx := make([]int64, sp.Depth)
	for k := 0; k < sp.Depth; k++ {
		lo, hi, ok := sp.rangeAt(k, idx)
		if !ok {
			// Should not happen while total volume > 0 and choices are
			// volume-weighted; defend anyway.
			return idx
		}
		// Total volume below this prefix.
		var total int64
		weights := make([]int64, hi-lo+1)
		for v := lo; v <= hi; v++ {
			idx[k] = v
			w := sp.count(k+1, idx)
			weights[v-lo] = w
			total += w
		}
		if total == 0 {
			return idx
		}
		t := rng.Int63n(total)
		for v := lo; v <= hi; v++ {
			t -= weights[v-lo]
			if t < 0 {
				idx[k] = v
				break
			}
		}
	}
	return idx
}
