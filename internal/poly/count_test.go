package poly

import (
	"math/rand"
	"testing"

	"cachemodel/internal/ir"
)

func TestCountTileRect(t *testing.T) {
	sp := rect([2]int64{1, 10}, [2]int64{2, 5})
	if got := sp.CountTile(FullTile()); got != 40 {
		t.Errorf("full tile count = %d, want 40", got)
	}
	if got := sp.CountTile(Tile{Dim: 0, Lo: 3, Hi: 7}); got != 20 {
		t.Errorf("tile count = %d, want 20", got)
	}
	if got := sp.CountTile(Tile{Dim: 1, Lo: 4, Hi: 9}); got != 20 {
		t.Errorf("clamped tile count = %d, want 20", got)
	}
	if got := sp.CountTile(Tile{Dim: 0, Lo: 11, Hi: 20}); got != 0 {
		t.Errorf("out-of-range tile count = %d, want 0", got)
	}
}

func TestCountWithExtras(t *testing.T) {
	sp := rect([2]int64{1, 10}, [2]int64{1, 10})
	// Extra constraint: I1 + I2 <= 6 (15 points, see TestInequalityGuardVolume).
	sys := []ir.NConstraint{{Expr: ir.Affine{Const: 6, Coeff: []int64{-1, -1}}}}
	if got := sp.CountWith(FullTile(), sys); got != 15 {
		t.Errorf("count with inequality = %d, want 15", got)
	}
	// Equality: the diagonal.
	diag := []ir.NConstraint{{Expr: ir.Affine{Coeff: []int64{-1, 1}}, IsEq: true}}
	if got := sp.CountWith(FullTile(), diag); got != 10 {
		t.Errorf("count with equality = %d, want 10", got)
	}
	// Depth-0 (constant) constraints gate the whole space.
	never := []ir.NConstraint{{Expr: ir.Affine{Const: -1}}}
	if got := sp.CountWith(FullTile(), never); got != 0 {
		t.Errorf("count with false constant = %d, want 0", got)
	}
}

func TestCountUnion(t *testing.T) {
	sp := rect([2]int64{1, 10}, [2]int64{1, 10})
	// A: I1 <= 4 (40 points); B: I2 <= 3 (30 points); |A∩B| = 12.
	a := []ir.NConstraint{{Expr: ir.Affine{Const: 4, Coeff: []int64{-1}}}}
	b := []ir.NConstraint{{Expr: ir.Affine{Const: 3, Coeff: []int64{0, -1}}}}
	if got := sp.CountUnion(FullTile(), [][]ir.NConstraint{a, b}); got != 58 {
		t.Errorf("union count = %d, want 58", got)
	}
	if got := sp.CountUnion(FullTile(), nil); got != 0 {
		t.Errorf("empty union count = %d, want 0", got)
	}
}

// randomSpace derives a small bounded space with optional outer-dependent
// bounds and guards from a seeded RNG (shared by the fuzz target and the
// property tests).
func randomSpace(rng *rand.Rand) (*Space, [][]ir.NConstraint) {
	depth := 1 + rng.Intn(3)
	var bs []ir.NBound
	for d := 0; d < depth; d++ {
		lo := ir.Affine{Const: int64(1 + rng.Intn(3))}
		hi := ir.Affine{Const: int64(3 + rng.Intn(6))}
		if d > 0 && rng.Intn(2) == 0 {
			c := make([]int64, d)
			c[rng.Intn(d)] = 1
			lo = ir.Affine{Const: 0, Coeff: c}
		}
		bs = append(bs, bound(lo, hi))
	}
	var gs []ir.NConstraint
	if rng.Intn(2) == 0 {
		c := make([]int64, depth)
		c[rng.Intn(depth)] = 1
		gs = append(gs, ir.NConstraint{Expr: ir.Affine{Const: -2, Coeff: c}})
	}
	// Extra affine guard systems for CountWith/CountUnion, each over a
	// random prefix of the depths with small coefficients.
	var systems [][]ir.NConstraint
	for s := rng.Intn(3); s > 0; s-- {
		var sys []ir.NConstraint
		for n := 1 + rng.Intn(2); n > 0; n-- {
			c := make([]int64, depth)
			for d := range c {
				c[d] = int64(rng.Intn(3) - 1)
			}
			sys = append(sys, ir.NConstraint{
				Expr: ir.Affine{Const: int64(rng.Intn(9) - 2), Coeff: c},
				IsEq: rng.Intn(4) == 0,
			})
		}
		systems = append(systems, sys)
	}
	return New(bs, gs), systems
}

// bruteWith counts enumeration-satisfying points of sys by brute force.
func bruteWith(sp *Space, t Tile, sys []ir.NConstraint) int64 {
	var n int64
	sp.EnumerateTile(t, func(idx []int64) bool {
		for _, c := range sys {
			if !c.Holds(idx) {
				return true
			}
		}
		n++
		return true
	})
	return n
}

// FuzzCountVsEnumerate: on random bounded affine spaces with random guard
// systems, the closed-form counting engine must equal brute-force
// enumeration — for plain tiles, extra constraint systems, and unions.
func FuzzCountVsEnumerate(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 1234, 99999} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		sp, systems := randomSpace(rng)
		tiles := []Tile{FullTile()}
		if sp.Depth > 0 {
			d := rng.Intn(sp.Depth)
			lo := int64(rng.Intn(6))
			tiles = append(tiles, Tile{Dim: d, Lo: lo, Hi: lo + int64(rng.Intn(5))})
		}
		for _, tile := range tiles {
			if got, want := sp.CountTile(tile), bruteWith(sp, tile, nil); got != want {
				t.Fatalf("seed %d: CountTile(%+v) = %d, enumeration %d", seed, tile, got, want)
			}
			for si, sys := range systems {
				if got, want := sp.CountWith(tile, sys), bruteWith(sp, tile, sys); got != want {
					t.Fatalf("seed %d: CountWith(%+v, sys%d) = %d, enumeration %d", seed, tile, si, got, want)
				}
			}
			if len(systems) > 0 {
				var want int64
				sp.EnumerateTile(tile, func(idx []int64) bool {
					for _, sys := range systems {
						ok := true
						for _, c := range sys {
							if !c.Holds(idx) {
								ok = false
								break
							}
						}
						if ok {
							want++
							return true
						}
					}
					return true
				})
				if got := sp.CountUnion(tile, systems); got != want {
					t.Fatalf("seed %d: CountUnion(%+v) = %d, enumeration %d", seed, tile, got, want)
				}
			}
		}
	})
}

// TestEnumerateAllocFree pins the hot-path allocation budget: steady-state
// enumeration (and tiled enumeration) must not allocate at all — the
// scratch index vectors come from the pool.
func TestEnumerateAllocFree(t *testing.T) {
	sp := New([]ir.NBound{
		bound(konst(1), konst(16)),
		bound(ir.AffineIndex(1), konst(16)),
	}, []ir.NConstraint{{Expr: ir.Affine{Const: 30, Coeff: []int64{-1, -1}}}})
	var n int64
	warm := func() {
		sp.Enumerate(func([]int64) bool { n++; return true })
		sp.EnumerateTile(Tile{Dim: 0, Lo: 2, Hi: 9}, func([]int64) bool { n++; return true })
	}
	warm() // materialise the lazy caches and prime the pool
	if avg := testing.AllocsPerRun(20, warm); avg != 0 {
		t.Errorf("Enumerate/EnumerateTile allocate %.1f times per run, want 0", avg)
	}
	if n == 0 {
		t.Fatal("enumerated nothing")
	}
}

// TestSampleAllocBudget: a Sample call shares one backing array across all
// returned points, so its allocation count is O(1), not O(n).
func TestSampleAllocBudget(t *testing.T) {
	sp := New([]ir.NBound{
		bound(konst(1), konst(64)),
		bound(konst(1), konst(64)),
	}, nil)
	rng := rand.New(rand.NewSource(3))
	const draws = 256
	avg := testing.AllocsPerRun(10, func() {
		if pts := sp.Sample(rng, draws); len(pts) != draws {
			t.Fatalf("sampled %d of %d", len(pts), draws)
		}
	})
	// Backing array + point-header slice + enumeration scratch: well under
	// one allocation per point; the exact figure may drift with the
	// runtime, so pin only the O(1)-vs-O(n) distinction.
	if avg > 16 {
		t.Errorf("Sample allocates %.1f times per call for %d points, want O(1)", avg, draws)
	}
}
