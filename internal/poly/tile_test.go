package poly

import (
	"fmt"
	"testing"

	"cachemodel/internal/ir"
)

// tileSpaces are the shapes the partition property is checked on: a
// rectangle, a wide-inner rectangle, a triangle (inner bound depends on
// the outer index) and a guarded space.
func tileSpaces() map[string]*Space {
	tri := New([]ir.NBound{
		bound(konst(1), konst(12)),
		bound(konst(1), ir.Affine{Coeff: []int64{1}}), // J <= I
	}, nil)
	guarded := New([]ir.NBound{
		bound(konst(1), konst(10)),
		bound(konst(1), konst(10)),
	}, []ir.NConstraint{{Expr: ir.Affine{Const: -3, Coeff: []int64{1, 1}}}}) // I+J >= 3
	return map[string]*Space{
		"rect":     rect([2]int64{1, 9}, [2]int64{1, 7}),
		"wide":     rect([2]int64{1, 2}, [2]int64{1, 40}),
		"tri":      tri,
		"guarded":  guarded,
		"single":   rect([2]int64{5, 5}, [2]int64{3, 3}),
		"negative": rect([2]int64{-6, 6}, [2]int64{-2, 2}),
	}
}

// TestTilesPartition: the tiles of a space must partition it — every point
// of Enumerate appears in exactly one tile's EnumerateTile, each tile
// enumerates in lexicographic order, and tile counts sum to the volume.
func TestTilesPartition(t *testing.T) {
	for name, sp := range tileSpaces() {
		for _, n := range []int{1, 2, 3, 5, 16, 100} {
			var whole []string
			sp.Enumerate(func(idx []int64) bool {
				whole = append(whole, fmt.Sprint(idx))
				return true
			})
			seen := map[string]int{}
			tiles := sp.Tiles(n)
			if len(tiles) > n {
				t.Fatalf("%s: Tiles(%d) returned %d tiles", name, n, len(tiles))
			}
			var total int64
			for _, tile := range tiles {
				sp.EnumerateTile(tile, func(idx []int64) bool {
					seen[fmt.Sprint(idx)]++
					total++
					return true
				})
			}
			if total != int64(len(whole)) {
				t.Fatalf("%s: Tiles(%d): %d points across tiles, Enumerate has %d", name, n, total, len(whole))
			}
			for _, k := range whole {
				if seen[k] != 1 {
					t.Fatalf("%s: Tiles(%d): point %s covered %d times", name, n, k, seen[k])
				}
			}
		}
	}
}

// TestEnumerateTileOrder: within one tile the enumeration must be in the
// space's lexicographic order (the same order Enumerate would use).
func TestEnumerateTileOrder(t *testing.T) {
	sp := rect([2]int64{1, 6}, [2]int64{1, 6})
	for _, tile := range sp.Tiles(3) {
		var pts [][]int64
		sp.EnumerateTile(tile, func(idx []int64) bool {
			pts = append(pts, append([]int64(nil), idx...))
			return true
		})
		for i := 1; i < len(pts); i++ {
			a, b := pts[i-1], pts[i]
			less := false
			for k := range a {
				if a[k] != b[k] {
					less = a[k] < b[k]
					break
				}
			}
			if !less {
				t.Fatalf("tile %+v: %v not before %v", tile, a, b)
			}
		}
	}
}

// TestEnumerateTileEarlyStop: returning false stops the tile enumeration.
func TestEnumerateTileEarlyStop(t *testing.T) {
	sp := rect([2]int64{1, 10}, [2]int64{1, 10})
	for _, tile := range sp.Tiles(4) {
		n := 0
		sp.EnumerateTile(tile, func([]int64) bool {
			n++
			return n < 3
		})
		if n != 3 {
			t.Fatalf("tile %+v: early stop visited %d points", tile, n)
		}
	}
}

// TestFullTile: the trivial tile enumerates the whole space.
func TestFullTile(t *testing.T) {
	sp := rect([2]int64{1, 4}, [2]int64{1, 4})
	var n int64
	sp.EnumerateTile(FullTile(), func([]int64) bool { n++; return true })
	if n != sp.Volume() {
		t.Fatalf("full tile visited %d of %d points", n, sp.Volume())
	}
	if got := sp.Tiles(0); len(got) != 1 || !got[0].Full() {
		t.Fatalf("Tiles(0) = %+v, want the full tile", got)
	}
}
