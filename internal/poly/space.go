// Package poly implements the iteration-space machinery of §3.2–3.3:
// reference iteration spaces (RIS) described by per-depth affine loop
// bounds plus affine guard constraints, with membership tests, exact
// volume computation, lexicographic enumeration and uniform sampling.
package poly

import (
	"sync"

	"cachemodel/internal/ir"
)

// idxPool recycles index scratch slices across Enumerate / EnumerateTile /
// Sample / CountWith calls. Spaces are shared immutably between worker
// goroutines, so the scratch cannot live on the Space itself; pooling keeps
// the per-call hot paths allocation-free instead.
var idxPool = sync.Pool{New: func() any {
	s := make([]int64, 0, 16)
	return &s
}}

// getIdx returns a zeroed scratch index slice of length n from the pool,
// via a stable pointer so the round trip through the pool allocates
// nothing in steady state.
func getIdx(n int) *[]int64 {
	p := idxPool.Get().(*[]int64)
	s := *p
	if cap(s) < n {
		s = make([]int64, n)
	} else {
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
	}
	*p = s
	return p
}

// putIdx recycles a scratch slice obtained from getIdx.
func putIdx(p *[]int64) { idxPool.Put(p) }

// Space is the iteration set of a normalised statement: the polytope
// carved by the n affine bound pairs intersected with the guard
// constraints. All references of one statement share a Space (§3.3).
type Space struct {
	Depth  int
	Bounds []ir.NBound
	Guards []ir.NConstraint

	// guardsAt[k] lists the guards whose deepest index is I_{k+1}; they can
	// be resolved as soon as I_1..I_{k+1} are assigned.
	guardsAt [][]ir.NConstraint
	volume   int64
	volKnown bool
}

// FromStmt builds the Space of a normalised statement.
func FromStmt(s *ir.NStmt) *Space {
	sp := &Space{Depth: s.Depth(), Bounds: s.Bounds, Guards: s.Guards}
	sp.index()
	return sp
}

// New builds a Space from explicit bounds and guards (used in tests).
func New(bounds []ir.NBound, guards []ir.NConstraint) *Space {
	sp := &Space{Depth: len(bounds), Bounds: bounds, Guards: guards}
	sp.index()
	return sp
}

func (sp *Space) index() {
	sp.guardsAt = make([][]ir.NConstraint, sp.Depth)
	for _, g := range sp.Guards {
		d := g.Expr.MaxDepthUsed()
		if d == 0 {
			d = 1 // constant guard: resolve at the first level
		}
		sp.guardsAt[d-1] = append(sp.guardsAt[d-1], g)
	}
}

// Contains reports whether idx lies within bounds and satisfies all guards.
func (sp *Space) Contains(idx []int64) bool {
	if len(idx) != sp.Depth {
		return false
	}
	for k := 0; k < sp.Depth; k++ {
		lo := sp.Bounds[k].Lo.Eval(idx)
		hi := sp.Bounds[k].Hi.Eval(idx)
		if idx[k] < lo || idx[k] > hi {
			return false
		}
	}
	for _, g := range sp.Guards {
		if !g.Holds(idx) {
			return false
		}
	}
	return true
}

// rangeAt computes the admissible range of I_{k+1} given the assigned
// prefix idx[0..k-1]: the loop bounds tightened by every guard whose
// deepest index is I_{k+1}. ok=false means the range is empty.
func (sp *Space) rangeAt(k int, idx []int64) (lo, hi int64, ok bool) {
	lo = sp.Bounds[k].Lo.Eval(idx)
	hi = sp.Bounds[k].Hi.Eval(idx)
	return narrowBy(sp.guardsAt[k], k, idx, lo, hi)
}

// RangeAt exposes the admissible range of I_{k+1} under the assigned
// prefix idx[0..k-1] (bounds tightened by the guards resolvable at this
// level). Callers must treat idx as scratch: entries at depth >= k may be
// overwritten transiently. ok=false means the range is empty.
func (sp *Space) RangeAt(k int, idx []int64) (lo, hi int64, ok bool) {
	return sp.rangeAt(k, idx)
}

// narrowBy tightens the candidate range [lo, hi] of I_{k+1} by a set of
// affine constraints whose deepest used index is I_{k+1}, evaluated at the
// prefix idx[0..k-1]. idx[k] is used as scratch and restored.
func narrowBy(cons []ir.NConstraint, k int, idx []int64, lo, hi int64) (int64, int64, bool) {
	for _, g := range cons {
		c := g.Expr.At(k + 1)
		// rest = value of the guard expression with I_{k+1} zeroed.
		save := idx[k]
		idx[k] = 0
		rest := g.Expr.Eval(idx)
		idx[k] = save
		if c == 0 {
			// Guard constant in I_{k+1} (only possible via deeper zero
			// coefficients); evaluate directly.
			if g.IsEq && rest != 0 {
				return 0, -1, false
			}
			if !g.IsEq && rest < 0 {
				return 0, -1, false
			}
			continue
		}
		if g.IsEq {
			// c·v + rest == 0  =>  v = −rest/c (must divide).
			if (-rest)%c != 0 {
				return 0, -1, false
			}
			v := -rest / c
			if v > lo {
				lo = v
			}
			if v < hi {
				hi = v
			}
		} else {
			// c·v + rest >= 0.
			if c > 0 {
				// v >= ceil(−rest/c)
				b := ceilDiv(-rest, c)
				if b > lo {
					lo = b
				}
			} else {
				// v <= floor(rest/−c)
				b := floorDiv(rest, -c)
				if b < hi {
					hi = b
				}
			}
		}
	}
	if lo > hi {
		return 0, -1, false
	}
	return lo, hi, true
}

func ceilDiv(a, b int64) int64 { // b > 0
	if a >= 0 {
		return (a + b - 1) / b
	}
	return -((-a) / b)
}

func floorDiv(a, b int64) int64 { // b > 0
	if a >= 0 {
		return a / b
	}
	return -((-a + b - 1) / b)
}

// Volume returns the exact number of iteration points in the space. The
// result is cached. Rectangular suffixes are multiplied out rather than
// enumerated, so common spaces cost far less than full enumeration.
func (sp *Space) Volume() int64 {
	if sp.volKnown {
		return sp.volume
	}
	ip := getIdx(sp.Depth)
	sp.volume = sp.count(0, *ip)
	putIdx(ip)
	sp.volKnown = true
	return sp.volume
}

// suffixIndependent reports whether levels m.. depend only on indices ≥ m
// (bounds and guards alike), so the sub-volume from level m is a constant.
func (sp *Space) suffixIndependent(m int) bool {
	for j := m; j < sp.Depth; j++ {
		if usesShallowerThan(sp.Bounds[j].Lo, m) || usesShallowerThan(sp.Bounds[j].Hi, m) {
			return false
		}
		for _, g := range sp.guardsAt[j] {
			if usesShallowerThan(g.Expr, m) {
				return false
			}
		}
	}
	return true
}

// usesShallowerThan reports whether a references any index I_d with d ≤ m
// (1-based m levels, i.e. depth index < m in 0-based terms).
func usesShallowerThan(a ir.Affine, m int) bool {
	for d := 1; d <= m; d++ {
		if a.At(d) != 0 {
			return true
		}
	}
	return false
}

func (sp *Space) count(k int, idx []int64) int64 {
	if k == sp.Depth {
		return 1
	}
	lo, hi, ok := sp.rangeAt(k, idx)
	if !ok {
		return 0
	}
	// If everything below is independent of I_{k+1} and shallower, the
	// sub-volume is a constant factor.
	if sp.suffixIndependent(k + 1) {
		idx[k] = lo
		sub := sp.count(k+1, idx)
		return (hi - lo + 1) * sub
	}
	var total int64
	for v := lo; v <= hi; v++ {
		idx[k] = v
		total += sp.count(k+1, idx)
	}
	return total
}

// Enumerate calls visit for every point of the space in lexicographic
// order. If visit returns false, enumeration stops early. The idx slice
// passed to visit is scratch owned by the enumeration: callers must copy
// it to retain a point.
func (sp *Space) Enumerate(visit func(idx []int64) bool) {
	ip := getIdx(sp.Depth)
	sp.enum(0, *ip, visit)
	putIdx(ip)
}

func (sp *Space) enum(k int, idx []int64, visit func([]int64) bool) bool {
	if k == sp.Depth {
		return visit(idx)
	}
	lo, hi, ok := sp.rangeAt(k, idx)
	if !ok {
		return true
	}
	for v := lo; v <= hi; v++ {
		idx[k] = v
		if !sp.enum(k+1, idx, visit) {
			return false
		}
	}
	return true
}

// BoundingBox returns constant per-depth index ranges enclosing the space,
// obtained by interval evaluation of the affine bounds, and reports ok =
// false when the space is statically empty.
func (sp *Space) BoundingBox() (lo, hi []int64, ok bool) {
	lo = make([]int64, sp.Depth)
	hi = make([]int64, sp.Depth)
	for k := 0; k < sp.Depth; k++ {
		blo := intervalEval(sp.Bounds[k].Lo, lo, hi, k, true)
		bhi := intervalEval(sp.Bounds[k].Hi, lo, hi, k, false)
		if blo > bhi {
			return nil, nil, false
		}
		lo[k], hi[k] = blo, bhi
	}
	return lo, hi, true
}

// intervalEval evaluates an affine bound over the index intervals of the
// outer depths, returning the minimum (wantMin) or maximum value.
func intervalEval(a ir.Affine, lo, hi []int64, k int, wantMin bool) int64 {
	v := a.Const
	for d := 1; d <= k; d++ {
		c := a.At(d)
		if c == 0 {
			continue
		}
		if (c > 0) == wantMin {
			v += c * lo[d-1]
		} else {
			v += c * hi[d-1]
		}
	}
	return v
}
