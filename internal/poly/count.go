package poly

import (
	"cachemodel/internal/ir"
)

// This file is the lattice-point counting engine: it answers "how many
// points does this region hold?" without visiting them, generalising
// Volume() to tiles and to extra affine constraint systems. The solver's
// symbolic fast path uses it to resolve whole regions of an iteration
// space (all-cold references, replicated slabs) in closed form.
//
// The algorithm is the per-dimension interval decomposition of Volume():
// at each level the admissible interval of I_{k+1} is computed from the
// bounds, the guards resolvable at that level, the tile clamp, and the
// extra constraints resolvable at that level; whenever every deeper level
// is independent of the indices fixed so far, the sub-count is a constant
// factor and the interval multiplies instead of being enumerated.

// CountTile returns the exact number of points of the space inside the
// tile. CountTile(FullTile()) == Volume().
func (sp *Space) CountTile(t Tile) int64 {
	if t.Full() {
		return sp.Volume()
	}
	return sp.CountWith(t, nil)
}

// CountWith returns the exact number of points of the space inside the
// tile that additionally satisfy every constraint in extra. Constraints
// may use any index up to the space's depth; a constraint using deeper
// indices makes the call panic (the caller built it against the wrong
// space).
func (sp *Space) CountWith(t Tile, extra []ir.NConstraint) int64 {
	if sp.Depth == 0 {
		for _, g := range extra {
			ok := g.Expr.Const >= 0
			if g.IsEq {
				ok = g.Expr.Const == 0
			}
			if !ok {
				return 0
			}
		}
		if t.Full() {
			return sp.Volume()
		}
		return 0
	}
	c := counter{sp: sp, t: t}
	c.extraAt = make([][]ir.NConstraint, sp.Depth)
	for _, g := range extra {
		d := g.Expr.MaxDepthUsed()
		if d > sp.Depth {
			panic("poly: CountWith constraint deeper than the space")
		}
		if d == 0 {
			d = 1 // constant constraint: resolve at the first level
		}
		c.extraAt[d-1] = append(c.extraAt[d-1], g)
	}
	c.computeIndep()
	ip := getIdx(sp.Depth)
	defer putIdx(ip)
	return c.count(0, *ip)
}

// CountUnion returns the exact number of points of the space inside the
// tile satisfying at least one of the constraint systems, by
// inclusion–exclusion over the systems. The cost is exponential in
// len(systems); callers keep the union small.
func (sp *Space) CountUnion(t Tile, systems [][]ir.NConstraint) int64 {
	if len(systems) == 0 {
		return 0
	}
	if len(systems) > 20 {
		panic("poly: CountUnion over too many systems")
	}
	var total int64
	var merged []ir.NConstraint
	for mask := 1; mask < 1<<len(systems); mask++ {
		merged = merged[:0]
		bits := 0
		for i, sys := range systems {
			if mask&(1<<i) != 0 {
				bits++
				merged = append(merged, sys...)
			}
		}
		n := sp.CountWith(t, merged)
		if bits%2 == 1 {
			total += n
		} else {
			total -= n
		}
	}
	return total
}

// counter is the state of one CountWith call.
type counter struct {
	sp      *Space
	t       Tile
	extraAt [][]ir.NConstraint
	// indep[m] reports that levels m.. (bounds, guards and extras alike)
	// depend only on indices >= m, so the sub-count below level m-1 is a
	// constant factor.
	indep []bool
}

// computeIndep fills the per-level suffix-independence table, mirroring
// Space.suffixIndependent but including the extra constraints.
func (c *counter) computeIndep() {
	sp := c.sp
	n := sp.Depth
	c.indep = make([]bool, n+1)
	c.indep[n] = true
	for m := n - 1; m >= 0; m-- {
		ok := true
		for j := m; j < n && ok; j++ {
			if usesShallowerThan(sp.Bounds[j].Lo, m) || usesShallowerThan(sp.Bounds[j].Hi, m) {
				ok = false
				break
			}
			for _, g := range sp.guardsAt[j] {
				if usesShallowerThan(g.Expr, m) {
					ok = false
					break
				}
			}
			for _, g := range c.extraAt[j] {
				if usesShallowerThan(g.Expr, m) {
					ok = false
					break
				}
			}
		}
		c.indep[m] = ok
	}
}

func (c *counter) count(k int, idx []int64) int64 {
	sp := c.sp
	if k == sp.Depth {
		return 1
	}
	lo, hi, ok := sp.rangeAt(k, idx)
	if !ok {
		return 0
	}
	if k == c.t.Dim {
		if c.t.Lo > lo {
			lo = c.t.Lo
		}
		if c.t.Hi < hi {
			hi = c.t.Hi
		}
		if lo > hi {
			return 0
		}
	}
	lo, hi, ok = narrowBy(c.extraAt[k], k, idx, lo, hi)
	if !ok {
		return 0
	}
	if c.indep[k+1] {
		idx[k] = lo
		sub := c.count(k+1, idx)
		return (hi - lo + 1) * sub
	}
	var total int64
	for v := lo; v <= hi; v++ {
		idx[k] = v
		total += c.count(k+1, idx)
	}
	return total
}
