package poly

// Tile restricts a Space to the points whose index at depth Dim lies in
// [Lo, Hi]. The tiles returned by Tiles partition the space: every point
// lies in exactly one tile, so per-tile enumerations can run concurrently
// and their (order-independent) aggregates merge into exactly the
// whole-space result. An out-of-range tile is simply empty; tiling is
// sound for any dimension, including ones whose exact range depends on
// outer indices, because the clamp only restricts the admissible range.
type Tile struct {
	Dim    int
	Lo, Hi int64
}

// Full reports whether the tile covers the whole space (the trivial tile).
func (t Tile) Full() bool { return t.Dim < 0 }

// FullTile returns the tile covering the whole space.
func FullTile() Tile { return Tile{Dim: -1} }

// Tiles splits the space into at most n contiguous tiles along one
// dimension, preferring the outermost dimension wide enough to yield n
// tiles (outer splits keep per-tile enumeration overhead lowest), and
// falling back to the widest dimension otherwise. It returns the trivial
// full tile when the space cannot be split (n <= 1, zero depth, or a
// statically empty space).
func (sp *Space) Tiles(n int) []Tile {
	return sp.TilesAvoiding(n, -1)
}

// TilesAvoiding is Tiles with one dimension declared off-limits: the split
// prefers any other dimension, falling back to the avoided one only when no
// alternative is at least two wide. Solvers use it to keep a dimension
// contiguous inside every tile (the symbolic fast path replicates verdicts
// along one dimension, which tiling across it would truncate). avoid = -1
// places no restriction.
func (sp *Space) TilesAvoiding(n, avoid int) []Tile {
	if n <= 1 || sp.Depth == 0 {
		return []Tile{FullTile()}
	}
	lo, hi, ok := sp.BoundingBox()
	if !ok {
		return []Tile{FullTile()}
	}
	pick := func(skip int) int {
		for k := 0; k < sp.Depth; k++ {
			if k != skip && hi[k]-lo[k]+1 >= int64(n) {
				return k
			}
		}
		// No dimension is wide enough for n tiles: take the widest.
		d, best := -1, int64(1)
		for k := 0; k < sp.Depth; k++ {
			if w := hi[k] - lo[k] + 1; k != skip && w > best {
				best, d = w, k
			}
		}
		return d
	}
	dim := pick(avoid)
	if dim < 0 && avoid >= 0 {
		dim = pick(-1) // every alternative is degenerate; split the avoided dim
	}
	if dim < 0 {
		return []Tile{FullTile()}
	}
	width := hi[dim] - lo[dim] + 1
	parts := int64(n)
	if parts > width {
		parts = width
	}
	tiles := make([]Tile, 0, parts)
	for i := int64(0); i < parts; i++ {
		tlo := lo[dim] + i*width/parts
		thi := lo[dim] + (i+1)*width/parts - 1
		tiles = append(tiles, Tile{Dim: dim, Lo: tlo, Hi: thi})
	}
	return tiles
}

// EnumerateTile calls visit for every point of the space whose index at
// t.Dim lies in [t.Lo, t.Hi], in lexicographic order. The full tile
// enumerates the whole space.
func (sp *Space) EnumerateTile(t Tile, visit func(idx []int64) bool) {
	if t.Full() {
		sp.Enumerate(visit)
		return
	}
	ip := getIdx(sp.Depth)
	sp.enumTile(0, *ip, t, visit)
	putIdx(ip)
}

func (sp *Space) enumTile(k int, idx []int64, t Tile, visit func([]int64) bool) bool {
	if k == sp.Depth {
		return visit(idx)
	}
	lo, hi, ok := sp.rangeAt(k, idx)
	if !ok {
		return true
	}
	if k == t.Dim {
		if t.Lo > lo {
			lo = t.Lo
		}
		if t.Hi < hi {
			hi = t.Hi
		}
	}
	for v := lo; v <= hi; v++ {
		idx[k] = v
		if !sp.enumTile(k+1, idx, t, visit) {
			return false
		}
	}
	return true
}
