package poly

// Tile restricts a Space to the points whose index at depth Dim lies in
// [Lo, Hi]. The tiles returned by Tiles partition the space: every point
// lies in exactly one tile, so per-tile enumerations can run concurrently
// and their (order-independent) aggregates merge into exactly the
// whole-space result. An out-of-range tile is simply empty; tiling is
// sound for any dimension, including ones whose exact range depends on
// outer indices, because the clamp only restricts the admissible range.
type Tile struct {
	Dim    int
	Lo, Hi int64
}

// Full reports whether the tile covers the whole space (the trivial tile).
func (t Tile) Full() bool { return t.Dim < 0 }

// FullTile returns the tile covering the whole space.
func FullTile() Tile { return Tile{Dim: -1} }

// Tiles splits the space into at most n contiguous tiles along one
// dimension, preferring the outermost dimension wide enough to yield n
// tiles (outer splits keep per-tile enumeration overhead lowest), and
// falling back to the widest dimension otherwise. It returns the trivial
// full tile when the space cannot be split (n <= 1, zero depth, or a
// statically empty space).
func (sp *Space) Tiles(n int) []Tile {
	if n <= 1 || sp.Depth == 0 {
		return []Tile{FullTile()}
	}
	lo, hi, ok := sp.BoundingBox()
	if !ok {
		return []Tile{FullTile()}
	}
	dim := -1
	for k := 0; k < sp.Depth; k++ {
		if hi[k]-lo[k]+1 >= int64(n) {
			dim = k
			break
		}
	}
	if dim < 0 {
		// No dimension is wide enough for n tiles: take the widest.
		var best int64
		for k := 0; k < sp.Depth; k++ {
			if w := hi[k] - lo[k] + 1; w > best {
				best, dim = w, k
			}
		}
		if best < 2 {
			return []Tile{FullTile()}
		}
	}
	width := hi[dim] - lo[dim] + 1
	parts := int64(n)
	if parts > width {
		parts = width
	}
	tiles := make([]Tile, 0, parts)
	for i := int64(0); i < parts; i++ {
		tlo := lo[dim] + i*width/parts
		thi := lo[dim] + (i+1)*width/parts - 1
		tiles = append(tiles, Tile{Dim: dim, Lo: tlo, Hi: thi})
	}
	return tiles
}

// EnumerateTile calls visit for every point of the space whose index at
// t.Dim lies in [t.Lo, t.Hi], in lexicographic order. The full tile
// enumerates the whole space.
func (sp *Space) EnumerateTile(t Tile, visit func(idx []int64) bool) {
	if t.Full() {
		sp.Enumerate(visit)
		return
	}
	idx := make([]int64, sp.Depth)
	sp.enumTile(0, idx, t, visit)
}

func (sp *Space) enumTile(k int, idx []int64, t Tile, visit func([]int64) bool) bool {
	if k == sp.Depth {
		return visit(idx)
	}
	lo, hi, ok := sp.rangeAt(k, idx)
	if !ok {
		return true
	}
	if k == t.Dim {
		if t.Lo > lo {
			lo = t.Lo
		}
		if t.Hi < hi {
			hi = t.Hi
		}
	}
	for v := lo; v <= hi; v++ {
		idx[k] = v
		if !sp.enumTile(k+1, idx, t, visit) {
			return false
		}
	}
	return true
}
