package poly

import (
	"testing"

	"cachemodel/internal/ir"
)

// paramSquare is the n×n box: I1, I2 ∈ [1, n].
func paramSquare() *ParamSpace {
	return NewParamSpace([]ParamBound{
		{Lo: ParamAffine{Base: ir.AffineConst(1)}, Hi: ParamAffine{N: 1}},
		{Lo: ParamAffine{Base: ir.AffineConst(1)}, Hi: ParamAffine{N: 1}},
	}, nil)
}

// paramTriangle is the triangle 1 ≤ I1 ≤ n, I1 ≤ I2 ≤ n.
func paramTriangle() *ParamSpace {
	return NewParamSpace([]ParamBound{
		{Lo: ParamAffine{Base: ir.AffineConst(1)}, Hi: ParamAffine{N: 1}},
		{Lo: ParamAffine{Base: ir.AffineIndex(1)}, Hi: ParamAffine{N: 1}},
	}, nil)
}

// checkAgainstEnumeration pins the fitted piecewise count to brute-force
// enumeration of the instantiated space at every n in [lo, hi].
func checkAgainstEnumeration(t *testing.T, ps *ParamSpace, extra []ParamConstraint, pw interface {
	EvalInt(int64) (int64, bool)
}, lo, hi int64) {
	t.Helper()
	for n := lo; n <= hi; n++ {
		sp := ps.At(n)
		sys := make([]ir.NConstraint, len(extra))
		for i, g := range extra {
			sys[i] = g.At(n)
		}
		var want int64
		sp.Enumerate(func(idx []int64) bool {
			for _, c := range sys {
				if !c.Holds(idx) {
					return true
				}
			}
			want++
			return true
		})
		got, ok := pw.EvalInt(n)
		if !ok {
			t.Fatalf("n=%d: no chamber covers it", n)
		}
		if got != want {
			t.Fatalf("n=%d: fitted %d, enumerated %d", n, got, want)
		}
	}
}

func TestCountPolySquare(t *testing.T) {
	pw, err := paramSquare().CountPoly(FullTile(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstEnumeration(t, paramSquare(), nil, pw, 1, 40)
	// n² exactly: a single tail chamber of degree 2, period 1.
	got, _ := pw.EvalInt(1000)
	if got != 1000*1000 {
		t.Fatalf("square at 1000: %d", got)
	}
}

func TestCountPolyTriangle(t *testing.T) {
	pw, err := paramTriangle().CountPoly(FullTile(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstEnumeration(t, paramTriangle(), nil, pw, 1, 30)
	// n(n+1)/2 at a large size.
	if got, _ := pw.EvalInt(2001); got != 2001*2002/2 {
		t.Fatalf("triangle at 2001: %d", got)
	}
}

func TestCountWithPolyQuasi(t *testing.T) {
	// Points of [1,n]² with 2·I1 ≤ n: count = ⌊n/2⌋·n, a genuine period-2
	// quasi-polynomial.
	extra := []ParamConstraint{{Expr: ParamAffine{
		Base: ir.Affine{Coeff: []int64{-2}}, N: 1,
	}}}
	pw, err := paramSquare().CountWithPoly(FullTile(), extra, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstEnumeration(t, paramSquare(), extra, pw, 1, 33)
	if got, _ := pw.EvalInt(999); got != (999/2)*999 {
		t.Fatalf("odd large: %d", got)
	}
	if got, _ := pw.EvalInt(1000); got != 500*1000 {
		t.Fatalf("even large: %d", got)
	}
}

func TestCountUnionPoly(t *testing.T) {
	// Union of {I1 ≤ 3} and {I2 ≤ 3} inside [1,n]²: 3n + 3n − 9 for n ≥ 3.
	sysA := []ParamConstraint{{Expr: ParamAffine{Base: ir.Affine{Const: 3, Coeff: []int64{-1}}}}}
	sysB := []ParamConstraint{{Expr: ParamAffine{Base: ir.Affine{Const: 3, Coeff: []int64{0, -1}}}}}
	pw, err := paramSquare().CountUnionPoly(FullTile(), [][]ParamConstraint{sysA, sysB}, FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(3); n <= 25; n++ {
		got, ok := pw.EvalInt(n)
		if !ok || got != 6*n-9 {
			t.Fatalf("union at %d: %d (ok=%v), want %d", n, got, ok, 6*n-9)
		}
	}
	// Small-n chambers (n < 3) come from explicit evaluation.
	if got, _ := pw.EvalInt(2); got != 4 {
		t.Fatalf("union at 2: %d, want 4", got)
	}
}

// TestCountPolyBitIdentityAtFixedN pins the parametric path to the exact
// counter at fixed sizes, including non-powers of two and sizes inside
// the explicit small-n chambers.
func TestCountPolyBitIdentityAtFixedN(t *testing.T) {
	ps := paramTriangle()
	pw, err := ps.CountPoly(FullTile(), FitOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int64{1, 2, 3, 5, 7, 12, 17, 31, 63, 64, 65, 100, 127, 1000} {
		want := ps.At(n).CountTile(FullTile())
		got, ok := pw.EvalInt(n)
		if !ok || got != want {
			t.Fatalf("n=%d: poly %d vs exact %d", n, got, want)
		}
	}
}
