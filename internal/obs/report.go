package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// SchemaV1 identifies the run-report JSON schema documented in
// DESIGN.md §Observability.
const SchemaV1 = "cachette/run-report/v1"

// BudgetSpent mirrors budget.Spent for the run report without importing
// internal/budget (obs stays a leaf package).
type BudgetSpent struct {
	Points      int64 `json:"points"`
	Scan        int64 `json:"scan"`
	WallNs      int64 `json:"wall_ns"`
	Checkpoints int64 `json:"checkpoints"`
	Graces      int   `json:"graces"`
}

// Provenance embeds what a cme.Report says about what was answered and
// what it cost.
type Provenance struct {
	Tier         string      `json:"tier"`
	Degraded     bool        `json:"degraded"`
	Coverage     float64     `json:"coverage"`
	MissRatioPct float64     `json:"miss_ratio_pct"`
	Accesses     int64       `json:"accesses"`
	Refs         int         `json:"refs"`
	CompleteRefs int         `json:"complete_refs"`
	Budget       BudgetSpent `json:"budget"`
}

// JobOutcomes records what happened to every job of a server run: the
// counts a run report needs so "the server ran" is auditable the same way
// "the analysis ran" is — completed/shed/degraded/failed are the serving
// analogue of tier/coverage provenance.
type JobOutcomes struct {
	// Completed jobs finished with a result (possibly degraded).
	Completed int64 `json:"completed"`
	// Shed requests were rejected at admission (queue full or global
	// budget saturated) — the load the server refused rather than stalled.
	Shed int64 `json:"shed"`
	// Degraded jobs completed below their requested tier (budget ladder).
	Degraded int64 `json:"degraded"`
	// Failed jobs ended with a typed error (cancelled, exhausted with
	// NoFallback, non-affine input, isolated panic).
	Failed int64 `json:"failed"`
	// Retried counts transient-failure re-enqueues.
	Retried int64 `json:"retried,omitempty"`
	// SingleflightHits counts jobs that shared another job's in-flight
	// solve instead of recomputing.
	SingleflightHits int64 `json:"singleflight_hits,omitempty"`
}

// validate rejects impossible outcome counts.
func (j *JobOutcomes) validate() error {
	if j == nil {
		return nil
	}
	if j.Completed < 0 || j.Shed < 0 || j.Degraded < 0 || j.Failed < 0 ||
		j.Retried < 0 || j.SingleflightHits < 0 {
		return fmt.Errorf("run report: negative job outcome count: %+v", *j)
	}
	if j.Degraded > j.Completed {
		return fmt.Errorf("run report: %d degraded jobs exceed %d completed", j.Degraded, j.Completed)
	}
	return nil
}

// DistOutcomes records what happened to every work unit of a distributed
// sweep run: the coordinator's ledger of sharded execution, mirroring
// JobOutcomes for the serve layer. Together with the dist_* metric series
// it makes "the sweep ran distributed" auditable — how much work was
// sharded, how much was stolen from dead shards, how much was never
// executed because content addressing already had the answer.
type DistOutcomes struct {
	// Sweeps is how many sweeps the coordinator ran.
	Sweeps int64 `json:"sweeps"`
	// Units is the total canonical work units decomposed.
	Units int64 `json:"units"`
	// Completed units finished with merged rows.
	Completed int64 `json:"completed"`
	// Leased counts lease grants (> Completed when units were retried or
	// stolen).
	Leased int64 `json:"leased"`
	// Stolen counts expired leases re-issued to another worker (work
	// stealing from dead or slow shards).
	Stolen int64 `json:"stolen"`
	// Deduped counts units (within or across sweeps) answered by an
	// identical unit's result instead of a solve.
	Deduped int64 `json:"deduped"`
	// Retried counts worker-reported unit failures that were re-enqueued.
	Retried int64 `json:"retried"`
	// Pruned counts candidates the advisor frontier pass eliminated before
	// exact solving.
	Pruned int64 `json:"pruned,omitempty"`
	// Workers maps worker id to units completed — per-worker throughput
	// once divided by the run's elapsed time.
	Workers map[string]int64 `json:"workers,omitempty"`
	// TimelineEvents is the total lifecycle transitions (queued, leased,
	// stolen, reported, merged, …) the coordinator recorded across all
	// unit timelines.
	TimelineEvents int64 `json:"timeline_events,omitempty"`
	// Traces lists the trace ids of traced sweeps, linking the run
	// report to the per-sweep trace-event exports.
	Traces []string `json:"traces,omitempty"`
}

// validate rejects impossible distributed-sweep counts.
func (d *DistOutcomes) validate() error {
	if d == nil {
		return nil
	}
	if d.Sweeps < 0 || d.Units < 0 || d.Completed < 0 || d.Leased < 0 ||
		d.Stolen < 0 || d.Deduped < 0 || d.Retried < 0 || d.Pruned < 0 ||
		d.TimelineEvents < 0 {
		return fmt.Errorf("run report: negative dist outcome count: %+v", *d)
	}
	for _, t := range d.Traces {
		if !validHexID(t, 32) {
			return fmt.Errorf("run report: malformed dist trace id %q", t)
		}
	}
	if d.Completed > d.Units {
		return fmt.Errorf("run report: %d completed units exceed %d decomposed", d.Completed, d.Units)
	}
	var byWorker int64
	for w, n := range d.Workers {
		if n < 0 {
			return fmt.Errorf("run report: worker %s: negative unit count %d", w, n)
		}
		byWorker += n
	}
	if byWorker > d.Completed {
		return fmt.Errorf("run report: per-worker units %d exceed %d completed", byWorker, d.Completed)
	}
	return nil
}

// CandidateProvenance is the per-candidate row for batch runs.
type CandidateProvenance struct {
	Label        string  `json:"label"`
	Tier         string  `json:"tier,omitempty"`
	Degraded     bool    `json:"degraded,omitempty"`
	MissRatioPct float64 `json:"miss_ratio_pct,omitempty"`
	Error        string  `json:"error,omitempty"`
}

// RunReport is the structured artifact written by -obs-out: one JSON
// document explaining both what was answered (Report provenance) and
// what it cost (spans + metrics).
type RunReport struct {
	Schema  string `json:"schema"`
	Program string `json:"program"`
	Command string `json:"command"`
	// TraceID is the run's 32-hex distributed-trace id (the root span's
	// trace), correlating this report with coordinator/worker logs and
	// trace-event exports.
	TraceID    string                `json:"trace_id,omitempty"`
	Started    time.Time             `json:"started"`
	ElapsedNs  int64                 `json:"elapsed_ns"`
	Report     *Provenance           `json:"report,omitempty"`
	Candidates []CandidateProvenance `json:"candidates,omitempty"`
	// Jobs carries the job-level outcomes of a server run (nil for
	// one-shot analyses).
	Jobs *JobOutcomes `json:"jobs,omitempty"`
	// Dist carries the work-unit outcomes of a distributed sweep run
	// (nil otherwise).
	Dist    *DistOutcomes `json:"dist,omitempty"`
	Spans   SpanSnapshot  `json:"spans"`
	Metrics Snapshot      `json:"metrics"`
}

// Report assembles a RunReport from the collector's spans and registry.
// The caller fills Program/Command/Report/Candidates.
func (c *Collector) Report() *RunReport {
	if c == nil {
		return nil
	}
	c.Finish()
	return &RunReport{
		Schema:    SchemaV1,
		TraceID:   c.TraceID(),
		Started:   c.start,
		ElapsedNs: int64(time.Since(c.start)),
		Spans:     c.root.Snapshot(),
		Metrics:   c.reg.Snapshot(),
	}
}

// WriteFile persists the run report atomically (fsync + rename).
func (r *RunReport) WriteFile(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(blob, '\n'))
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory, fsyncs it, then renames it over path, so an interrupted
// writer can never leave a truncated file behind.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	tmpName = "" // renamed away; nothing to clean up
	return nil
}

// ValidateRunReport checks blob against the v1 schema: schema id,
// non-empty program, a well-formed span tree (every span named, child
// durations non-negative), and a metrics snapshot exposing at least one
// cme_* series.  Returns the decoded report on success.
func ValidateRunReport(blob []byte) (*RunReport, error) {
	var r RunReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("run report: %w", err)
	}
	if r.Schema != SchemaV1 {
		return nil, fmt.Errorf("run report: schema %q, want %q", r.Schema, SchemaV1)
	}
	if r.Program == "" {
		return nil, fmt.Errorf("run report: missing program")
	}
	if r.ElapsedNs < 0 {
		return nil, fmt.Errorf("run report: negative elapsed_ns")
	}
	if r.TraceID != "" && !validHexID(r.TraceID, 32) {
		return nil, fmt.Errorf("run report: malformed trace_id %q", r.TraceID)
	}
	if err := validateSpan(r.Spans, ""); err != nil {
		return nil, err
	}
	if err := r.Jobs.validate(); err != nil {
		return nil, err
	}
	if err := r.Dist.validate(); err != nil {
		return nil, err
	}
	// Geometry-parametric tier counters must be mutually consistent: a
	// closed-form evaluation comes from a fitted column or the pure-cold
	// rung (which counts in both eval and purecold), and a fit can only
	// exist if anchor members were solved to feed it.
	geomEval := r.Metrics.Counters["cme_geom_eval_total"]
	geomFit := r.Metrics.Counters["cme_geom_fit_total"]
	geomPureCold := r.Metrics.Counters["cme_geom_purecold_total"]
	geomAnchors := r.Metrics.Counters["cme_geom_anchor_solves_total"]
	if geomEval > 0 && geomFit == 0 && geomPureCold == 0 {
		return nil, fmt.Errorf("run report: %d cme_geom_eval_total with neither cme_geom_fit_total nor cme_geom_purecold_total", geomEval)
	}
	if geomFit > 0 && geomAnchors == 0 {
		return nil, fmt.Errorf("run report: %d cme_geom_fit_total with no cme_geom_anchor_solves_total", geomFit)
	}
	if geomPureCold > geomEval {
		return nil, fmt.Errorf("run report: cme_geom_purecold_total %d exceeds cme_geom_eval_total %d", geomPureCold, geomEval)
	}
	// A one-shot analysis must expose solver metrics; a server run (Jobs
	// present) may instead have shed everything before any solver ran, and
	// a coordinator run (Dist present) solves on its workers, not locally —
	// in those cases the serve_*/dist_* series stand in as proof of
	// instrumentation.
	prefixes := []string{"cme_"}
	if r.Jobs != nil {
		prefixes = append(prefixes, "serve_")
	}
	if r.Dist != nil {
		prefixes = append(prefixes, "dist_")
	}
	if !hasMetricPrefix(r.Metrics, prefixes) {
		return nil, fmt.Errorf("run report: no %s metric in snapshot", strings.Join(prefixes, "/"))
	}
	return &r, nil
}

// hasMetricPrefix reports whether any counter, gauge or histogram name
// starts with one of the prefixes.
func hasMetricPrefix(s Snapshot, prefixes []string) bool {
	match := func(name string) bool {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}
	for name := range s.Counters {
		if match(name) {
			return true
		}
	}
	for name := range s.Gauges {
		if match(name) {
			return true
		}
	}
	for name := range s.Histograms {
		if match(name) {
			return true
		}
	}
	return false
}

func validateSpan(s SpanSnapshot, parent string) error {
	if s.Name == "" {
		return fmt.Errorf("run report: unnamed span under %q", parent)
	}
	if s.DurNs < 0 {
		return fmt.Errorf("run report: span %q has negative duration", s.Name)
	}
	for _, c := range s.Children {
		if c.Parent != "" && s.SpanID != "" && c.Parent != s.SpanID {
			return fmt.Errorf("run report: span %q parent_id %s does not link to %q (%s)",
				c.Name, c.Parent, s.Name, s.SpanID)
		}
		if c.TraceID != "" && s.TraceID != "" && c.TraceID != s.TraceID {
			return fmt.Errorf("run report: span %q trace_id differs from parent %q", c.Name, s.Name)
		}
		if err := validateSpan(c, s.Name); err != nil {
			return err
		}
	}
	return nil
}
