package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// SchemaV1 identifies the run-report JSON schema documented in
// DESIGN.md §Observability.
const SchemaV1 = "cachette/run-report/v1"

// BudgetSpent mirrors budget.Spent for the run report without importing
// internal/budget (obs stays a leaf package).
type BudgetSpent struct {
	Points      int64 `json:"points"`
	Scan        int64 `json:"scan"`
	WallNs      int64 `json:"wall_ns"`
	Checkpoints int64 `json:"checkpoints"`
	Graces      int   `json:"graces"`
}

// Provenance embeds what a cme.Report says about what was answered and
// what it cost.
type Provenance struct {
	Tier         string      `json:"tier"`
	Degraded     bool        `json:"degraded"`
	Coverage     float64     `json:"coverage"`
	MissRatioPct float64     `json:"miss_ratio_pct"`
	Accesses     int64       `json:"accesses"`
	Refs         int         `json:"refs"`
	CompleteRefs int         `json:"complete_refs"`
	Budget       BudgetSpent `json:"budget"`
}

// CandidateProvenance is the per-candidate row for batch runs.
type CandidateProvenance struct {
	Label        string  `json:"label"`
	Tier         string  `json:"tier,omitempty"`
	Degraded     bool    `json:"degraded,omitempty"`
	MissRatioPct float64 `json:"miss_ratio_pct,omitempty"`
	Error        string  `json:"error,omitempty"`
}

// RunReport is the structured artifact written by -obs-out: one JSON
// document explaining both what was answered (Report provenance) and
// what it cost (spans + metrics).
type RunReport struct {
	Schema     string                `json:"schema"`
	Program    string                `json:"program"`
	Command    string                `json:"command"`
	Started    time.Time             `json:"started"`
	ElapsedNs  int64                 `json:"elapsed_ns"`
	Report     *Provenance           `json:"report,omitempty"`
	Candidates []CandidateProvenance `json:"candidates,omitempty"`
	Spans      SpanSnapshot          `json:"spans"`
	Metrics    Snapshot              `json:"metrics"`
}

// Report assembles a RunReport from the collector's spans and registry.
// The caller fills Program/Command/Report/Candidates.
func (c *Collector) Report() *RunReport {
	if c == nil {
		return nil
	}
	c.Finish()
	return &RunReport{
		Schema:    SchemaV1,
		Started:   c.start,
		ElapsedNs: int64(time.Since(c.start)),
		Spans:     c.root.Snapshot(),
		Metrics:   c.reg.Snapshot(),
	}
}

// WriteFile persists the run report atomically (fsync + rename).
func (r *RunReport) WriteFile(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, append(blob, '\n'))
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory, fsyncs it, then renames it over path, so an interrupted
// writer can never leave a truncated file behind.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			tmp.Close()
			os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	tmpName = "" // renamed away; nothing to clean up
	return nil
}

// ValidateRunReport checks blob against the v1 schema: schema id,
// non-empty program, a well-formed span tree (every span named, child
// durations non-negative), and a metrics snapshot exposing at least one
// cme_* series.  Returns the decoded report on success.
func ValidateRunReport(blob []byte) (*RunReport, error) {
	var r RunReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("run report: %w", err)
	}
	if r.Schema != SchemaV1 {
		return nil, fmt.Errorf("run report: schema %q, want %q", r.Schema, SchemaV1)
	}
	if r.Program == "" {
		return nil, fmt.Errorf("run report: missing program")
	}
	if r.ElapsedNs < 0 {
		return nil, fmt.Errorf("run report: negative elapsed_ns")
	}
	if err := validateSpan(r.Spans, ""); err != nil {
		return nil, err
	}
	hasCME := false
	for name := range r.Metrics.Counters {
		if strings.HasPrefix(name, "cme_") {
			hasCME = true
			break
		}
	}
	if !hasCME {
		for name := range r.Metrics.Histograms {
			if strings.HasPrefix(name, "cme_") {
				hasCME = true
				break
			}
		}
	}
	if !hasCME {
		return nil, fmt.Errorf("run report: no cme_* metric in snapshot")
	}
	return &r, nil
}

func validateSpan(s SpanSnapshot, parent string) error {
	if s.Name == "" {
		return fmt.Errorf("run report: unnamed span under %q", parent)
	}
	if s.DurNs < 0 {
		return fmt.Errorf("run report: span %q has negative duration", s.Name)
	}
	for _, c := range s.Children {
		if err := validateSpan(c, s.Name); err != nil {
			return err
		}
	}
	return nil
}
