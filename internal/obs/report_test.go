package obs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testReport(t *testing.T) *RunReport {
	t.Helper()
	col := New("run")
	col.Registry().Counter("cme_tiles_solved_total").Add(3)
	ctx := NewContext(context.Background(), col)
	_, s := StartSpan(ctx, "solve.exact")
	s.End()
	rep := col.Report()
	rep.Program = "tomcatv"
	rep.Command = "analyze"
	rep.Report = &Provenance{Tier: "exact", Coverage: 1, MissRatioPct: 1.5, Accesses: 10, Refs: 2, CompleteRefs: 2}
	return rep
}

func TestRunReportRoundTrip(t *testing.T) {
	rep := testReport(t)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateRunReport(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != "tomcatv" || got.Report.Tier != "exact" {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.Spans.Children) != 1 || got.Spans.Children[0].Name != "solve.exact" {
		t.Fatalf("span tree lost: %+v", got.Spans)
	}
}

func TestValidateRejects(t *testing.T) {
	rep := testReport(t)
	cases := []struct {
		name   string
		mutate func(*RunReport)
		substr string
	}{
		{"schema", func(r *RunReport) { r.Schema = "v0" }, "schema"},
		{"program", func(r *RunReport) { r.Program = "" }, "program"},
		{"span", func(r *RunReport) { r.Spans.Children[0].Name = "" }, "unnamed span"},
		{"metrics", func(r *RunReport) { r.Metrics = Snapshot{} }, "no cme_"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := *rep
			spans := rep.Spans
			spans.Children = append([]SpanSnapshot(nil), rep.Spans.Children...)
			cp.Spans = spans
			tc.mutate(&cp)
			blob, err := json.Marshal(&cp)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ValidateRunReport(blob); err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("want error containing %q, got %v", tc.substr, err)
			}
		})
	}
	if _, err := ValidateRunReport([]byte("{")); err == nil {
		t.Fatal("malformed JSON must fail validation")
	}
}

// TestValidateGeomCounters covers the geometry-parametric tier's counter
// consistency rules: evals need a source rung, fits need anchors, and the
// pure-cold sub-count can never exceed the evals it is part of.
func TestValidateGeomCounters(t *testing.T) {
	make := func(eval, fit, pureCold, anchors int64) []byte {
		rep := testReport(t)
		cp := *rep
		cp.Metrics.Counters = map[string]int64{
			"cme_tiles_solved_total":       3,
			"cme_geom_eval_total":          eval,
			"cme_geom_fit_total":           fit,
			"cme_geom_purecold_total":      pureCold,
			"cme_geom_anchor_solves_total": anchors,
		}
		blob, err := json.Marshal(&cp)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	for name, blob := range map[string][]byte{
		"fitted column":   make(61, 4, 0, 3),
		"pure cold only":  make(8, 0, 8, 0),
		"mixed rungs":     make(61, 3, 10, 3),
		"tier never ran":  make(0, 0, 0, 0),
		"anchors no fits": make(0, 0, 0, 5),
	} {
		if _, err := ValidateRunReport(blob); err != nil {
			t.Errorf("%s: unexpected rejection: %v", name, err)
		}
	}
	for name, tc := range map[string]struct {
		blob   []byte
		substr string
	}{
		"eval without rung":  {make(10, 0, 0, 3), "neither"},
		"fit without anchor": {make(10, 2, 0, 0), "no cme_geom_anchor_solves_total"},
		"purecold over eval": {make(5, 1, 9, 3), "exceeds"},
	} {
		if _, err := ValidateRunReport(tc.blob); err == nil || !strings.Contains(err.Error(), tc.substr) {
			t.Errorf("%s: want error containing %q, got %v", name, tc.substr, err)
		}
	}
}

// TestValidateJobOutcomes covers the server-run shape of the report:
// job-level outcomes validate, serve_* metrics stand in for cme_* when
// Jobs is present, and impossible counts are rejected.
func TestValidateJobOutcomes(t *testing.T) {
	rep := testReport(t)
	rep.Jobs = &JobOutcomes{Completed: 5, Shed: 2, Degraded: 1, Failed: 1, Retried: 3, SingleflightHits: 2}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateRunReport(blob)
	if err != nil {
		t.Fatalf("valid job outcomes rejected: %v", err)
	}
	if got.Jobs == nil || got.Jobs.Completed != 5 || got.Jobs.Shed != 2 {
		t.Fatalf("job outcomes lost in round trip: %+v", got.Jobs)
	}

	// Server run that shed everything: no cme_* metric ever fired, but a
	// serve_* gauge proves the instrumentation ran.
	shedOnly := testReport(t)
	shedOnly.Jobs = &JobOutcomes{Shed: 10}
	shedOnly.Metrics = Snapshot{Gauges: map[string]int64{"serve_queue_depth": 0},
		Counters: map[string]int64{"serve_shed_total": 10}}
	blob, err = json.Marshal(shedOnly)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateRunReport(blob); err != nil {
		t.Fatalf("shed-only server report rejected: %v", err)
	}

	// Without Jobs, serve_* metrics alone must NOT satisfy validation.
	plain := testReport(t)
	plain.Metrics = Snapshot{Counters: map[string]int64{"serve_shed_total": 1}}
	blob, err = json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateRunReport(blob); err == nil {
		t.Fatal("one-shot report with only serve_* metrics validated")
	}

	for name, jo := range map[string]JobOutcomes{
		"negative":            {Completed: -1},
		"degraded>completed":  {Completed: 1, Degraded: 2},
		"negative_shed":       {Shed: -4},
		"negative_flight_hit": {SingleflightHits: -1},
	} {
		bad := testReport(t)
		joCopy := jo
		bad.Jobs = &joCopy
		blob, err := json.Marshal(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateRunReport(blob); err == nil {
			t.Errorf("%s: impossible outcomes validated", name)
		}
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != "second" {
		t.Fatalf("content = %q", blob)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
	// Writing into a missing directory surfaces the error.
	if err := WriteFileAtomic(filepath.Join(dir, "nope", "x.json"), []byte("x")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}

func TestRunReportWriteFile(t *testing.T) {
	rep := testReport(t)
	path := filepath.Join(t.TempDir(), "run.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateRunReport(blob); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDistOutcomes(t *testing.T) {
	rep := testReport(t)
	rep.Dist = &DistOutcomes{Sweeps: 1, Units: 8, Completed: 8, Leased: 11, Stolen: 3,
		Deduped: 2, Retried: 1, Pruned: 4, Workers: map[string]int64{"w0": 5, "w1": 3}}
	rep.Metrics = Snapshot{Counters: map[string]int64{"dist_units_completed_total": 8}}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateRunReport(blob)
	if err != nil {
		t.Fatalf("valid dist outcomes rejected: %v", err)
	}
	if got.Dist == nil || got.Dist.Stolen != 3 || got.Dist.Workers["w0"] != 5 {
		t.Fatalf("dist outcomes lost in round trip: %+v", got.Dist)
	}

	// A coordinator run solves on its workers: dist_* metrics alone must
	// satisfy the instrumentation check when Dist is present...
	coord := testReport(t)
	coord.Dist = &DistOutcomes{Sweeps: 1, Units: 4, Completed: 4}
	coord.Metrics = Snapshot{Counters: map[string]int64{"dist_sweeps_total": 1}}
	blob, err = json.Marshal(coord)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateRunReport(blob); err != nil {
		t.Fatalf("coordinator report with only dist_* metrics rejected: %v", err)
	}

	// ...but without Dist, dist_* metrics do not count as solver proof.
	plain := testReport(t)
	plain.Metrics = Snapshot{Counters: map[string]int64{"dist_sweeps_total": 1}}
	blob, err = json.Marshal(plain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateRunReport(blob); err == nil {
		t.Fatal("one-shot report with only dist_* metrics validated")
	}

	for name, d := range map[string]DistOutcomes{
		"negative_units":    {Units: -1},
		"negative_stolen":   {Stolen: -2},
		"completed>units":   {Units: 2, Completed: 3},
		"negative_worker":   {Units: 2, Completed: 2, Workers: map[string]int64{"w": -1}},
		"workers>completed": {Units: 4, Completed: 2, Workers: map[string]int64{"a": 2, "b": 1}},
	} {
		bad := testReport(t)
		dCopy := d
		bad.Dist = &dCopy
		bad.Metrics = Snapshot{Counters: map[string]int64{"dist_sweeps_total": 1}}
		blob, err := json.Marshal(bad)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ValidateRunReport(blob); err == nil {
			t.Errorf("%s: impossible dist outcomes validated", name)
		}
	}
}
