package obs

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testReport(t *testing.T) *RunReport {
	t.Helper()
	col := New("run")
	col.Registry().Counter("cme_tiles_solved_total").Add(3)
	ctx := NewContext(context.Background(), col)
	_, s := StartSpan(ctx, "solve.exact")
	s.End()
	rep := col.Report()
	rep.Program = "tomcatv"
	rep.Command = "analyze"
	rep.Report = &Provenance{Tier: "exact", Coverage: 1, MissRatioPct: 1.5, Accesses: 10, Refs: 2, CompleteRefs: 2}
	return rep
}

func TestRunReportRoundTrip(t *testing.T) {
	rep := testReport(t)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateRunReport(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != "tomcatv" || got.Report.Tier != "exact" {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if len(got.Spans.Children) != 1 || got.Spans.Children[0].Name != "solve.exact" {
		t.Fatalf("span tree lost: %+v", got.Spans)
	}
}

func TestValidateRejects(t *testing.T) {
	rep := testReport(t)
	cases := []struct {
		name   string
		mutate func(*RunReport)
		substr string
	}{
		{"schema", func(r *RunReport) { r.Schema = "v0" }, "schema"},
		{"program", func(r *RunReport) { r.Program = "" }, "program"},
		{"span", func(r *RunReport) { r.Spans.Children[0].Name = "" }, "unnamed span"},
		{"metrics", func(r *RunReport) { r.Metrics = Snapshot{} }, "no cme_"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cp := *rep
			spans := rep.Spans
			spans.Children = append([]SpanSnapshot(nil), rep.Spans.Children...)
			cp.Spans = spans
			tc.mutate(&cp)
			blob, err := json.Marshal(&cp)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := ValidateRunReport(blob); err == nil || !strings.Contains(err.Error(), tc.substr) {
				t.Fatalf("want error containing %q, got %v", tc.substr, err)
			}
		})
	}
	if _, err := ValidateRunReport([]byte("{")); err == nil {
		t.Fatal("malformed JSON must fail validation")
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	if err := WriteFileAtomic(path, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second")); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != "second" {
		t.Fatalf("content = %q", blob)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("temp files left behind: %v", ents)
	}
	// Writing into a missing directory surfaces the error.
	if err := WriteFileAtomic(filepath.Join(dir, "nope", "x.json"), []byte("x")); err == nil {
		t.Fatal("expected error for missing directory")
	}
}

func TestRunReportWriteFile(t *testing.T) {
	rep := testReport(t)
	path := filepath.Join(t.TempDir(), "run.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateRunReport(blob); err != nil {
		t.Fatal(err)
	}
}
