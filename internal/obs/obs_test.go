package obs

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_counter_total")
	g := r.Gauge("test_gauge")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := g.Value(); got != 8000 {
		t.Fatalf("gauge = %d, want 8000", got)
	}
	// Same name returns the same metric.
	if r.Counter("test_counter_total") != c {
		t.Fatal("registry returned a different counter for the same name")
	}
}

func TestNilMetricSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var l *LocalHistogram
	c.Add(3)
	c.Inc()
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	l.Observe(1)
	l.Flush()
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil metrics should read zero")
	}
	if h.NewLocal() != nil {
		t.Fatal("nil histogram should yield nil local")
	}
}

func TestHistogramBucketsAndLocalFlush(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", 1, 4, 16)
	h.Observe(1)  // bucket le=1
	h.Observe(3)  // le=4
	h.Observe(16) // le=16
	h.Observe(99) // +Inf

	l := h.NewLocal()
	for i := 0; i < 10; i++ {
		l.Observe(2) // le=4
	}
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("pre-flush count = %d, want 4 (local not flushed)", s.Count)
	}
	l.Flush()
	s = h.Snapshot()
	if s.Count != 14 {
		t.Fatalf("post-flush count = %d, want 14", s.Count)
	}
	wantCounts := []int64{1, 11, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Sum != 1+3+16+99+20 {
		t.Fatalf("sum = %d, want %d", s.Sum, 1+3+16+99+20)
	}
	// Flush is idempotent after reset.
	l.Flush()
	if got := h.Snapshot().Count; got != 14 {
		t.Fatalf("double flush changed count to %d", got)
	}
}

func TestInvalidMetricNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid metric name")
		}
	}()
	NewRegistry().Counter("Bad-Name")
}

func TestSpanTreeAndAttrs(t *testing.T) {
	col := New("run")
	ctx := NewContext(context.Background(), col)
	ctx, solve := StartSpan(ctx, "solve.exact")
	solve.SetAttr("refs", 7)
	_, tile := StartSpan(ctx, "tile")
	tile.End()
	solve.End()
	col.Finish()

	snap := col.Root().Snapshot()
	if snap.Name != "run" || len(snap.Children) != 1 {
		t.Fatalf("root snapshot = %+v", snap)
	}
	child := snap.Children[0]
	if child.Name != "solve.exact" || child.Attrs["refs"] != 7 {
		t.Fatalf("child = %+v", child)
	}
	if len(child.Children) != 1 || child.Children[0].Name != "tile" {
		t.Fatalf("grandchild = %+v", child.Children)
	}
	if child.DurNs < 0 {
		t.Fatalf("negative duration %d", child.DurNs)
	}
}

func TestNilCollectorFastPath(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty context should carry no collector")
	}
	ctx2, span := StartSpan(ctx, "x")
	if ctx2 != ctx || span != nil {
		t.Fatal("StartSpan without collector must be a no-op")
	}
	span.End()
	span.SetAttr("k", "v")
	var c *Collector
	c.Progress("s", 1, 2, "ref")
	c.AddProgress("s", 1, 2, "ref")
	c.Finish()
	c.OnProgress(func(Event) {}, time.Second)
	if c.Report() != nil {
		t.Fatal("nil collector report should be nil")
	}
	if NewContext(ctx, nil) != ctx {
		t.Fatal("NewContext(nil) must return ctx unchanged")
	}
}

func TestProgressThrottleAndFinalEmit(t *testing.T) {
	col := New("run")
	var events []Event
	col.OnProgress(func(e Event) { events = append(events, e) }, time.Hour)
	// First event passes (lastEmit starts at 0 but elapsed < interval,
	// so nothing emits until the final one).
	for i := int64(1); i < 100; i++ {
		col.Progress("solve", i, 100, "ref")
	}
	if len(events) != 0 {
		t.Fatalf("throttle leaked %d events", len(events))
	}
	col.Progress("solve", 100, 100, "ref")
	if len(events) != 1 {
		t.Fatalf("final event not forced: %d events", len(events))
	}
	e := events[0]
	if e.Done != 100 || e.Total != 100 || e.Stage != "solve" {
		t.Fatalf("final event = %+v", e)
	}
}

func TestAddProgressAccumulates(t *testing.T) {
	col := New("run")
	var last Event
	col.OnProgress(func(e Event) { last = e }, time.Nanosecond)
	col.AddProgress("solve", 40, 100, "a")
	time.Sleep(2 * time.Millisecond)
	col.AddProgress("solve", 60, 100, "b")
	if last.Done != 100 || last.Total != 100 {
		t.Fatalf("cumulative progress = %+v, want done=100", last)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("cme_tiles_solved_total").Add(5)
	r.Gauge("cme_workers").Set(3)
	h := r.Histogram("cme_fused_walk_candidates", 1, 2, 4)
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)
	var sb strings.Builder
	if err := WritePrometheus(&sb, r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE cme_tiles_solved_total counter\ncme_tiles_solved_total 5\n",
		"# TYPE cme_workers gauge\ncme_workers 3\n",
		"cme_fused_walk_candidates_bucket{le=\"1\"} 1\n",
		"cme_fused_walk_candidates_bucket{le=\"2\"} 1\n",
		"cme_fused_walk_candidates_bucket{le=\"4\"} 2\n",
		"cme_fused_walk_candidates_bucket{le=\"+Inf\"} 3\n",
		"cme_fused_walk_candidates_sum 13\n",
		"cme_fused_walk_candidates_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
