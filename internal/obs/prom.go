package obs

import (
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// WritePrometheus renders every metric in r using the Prometheus text
// exposition format (version 0.0.4).  Counters get a _total-as-named
// counter line, gauges a gauge line, histograms cumulative _bucket
// series with le labels plus _sum and _count.
func WritePrometheus(w io.Writer, r *Registry) error {
	counters, gauges, hists := r.names()
	for _, name := range counters {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, r.Counter(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", name, name, r.Gauge(name).Value()); err != nil {
			return err
		}
	}
	for _, name := range hists {
		s := r.Histogram(name).Snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for i, ub := range s.Bounds {
			cum += s.Counts[i]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, ub, cum); err != nil {
				return err
			}
		}
		cum += s.Counts[len(s.Bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, cum, name, s.Sum, name, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// Handler serves the registry in Prometheus text format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WritePrometheus(w, r)
	})
}

var expvarOnce sync.Once

// PublishExpvar publishes the Default registry as the expvar variable
// "cachette_metrics" (a JSON snapshot).  Safe to call repeatedly; only
// the first call registers.
func PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("cachette_metrics", expvar.Func(func() any {
			return Default.Snapshot()
		}))
	})
}
