package obs

import (
	"sync"
	"time"
)

// Span records wall time for one pipeline stage.  Spans form a tree:
// StartSpan on a context whose collector already carries a span links
// the new span as a child.  All methods are nil-safe so instrumented
// code needs no collector-presence checks.
type Span struct {
	name  string
	start time.Time

	// Trace identity, fixed at creation: traceID is shared by every
	// span under one collector, id names this span, parent is the id of
	// the span above it (possibly in another process).
	traceID string
	id      string
	parent  string

	mu       sync.Mutex
	end      time.Time
	attrs    map[string]any
	children []*Span
}

func newSpan(name string) *Span {
	return &Span{name: name, start: time.Now(), id: NewSpanID()}
}

// Name returns the span name.
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// TraceID returns the 32-hex trace id the span belongs to.
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// SpanID returns the span's own 16-hex id.
func (s *Span) SpanID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// ParentID returns the id of the span's parent ("" at a trace root).
func (s *Span) ParentID() string {
	if s == nil {
		return ""
	}
	return s.parent
}

// SetAttr attaches a key/value attribute to the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// End marks the span finished.  Idempotent: only the first End sticks.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

func (s *Span) addChild(c *Span) {
	if s == nil {
		return
	}
	c.traceID = s.traceID
	c.parent = s.id
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// Duration returns the span's elapsed wall time.  For an unfinished
// span it reports time since start.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// SpanSnapshot is the JSON form of a span subtree.
type SpanSnapshot struct {
	Name     string         `json:"name"`
	TraceID  string         `json:"trace_id,omitempty"`
	SpanID   string         `json:"span_id,omitempty"`
	Parent   string         `json:"parent_id,omitempty"`
	Start    time.Time      `json:"start"`
	DurNs    int64          `json:"dur_ns"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot copies the span subtree.  Unfinished spans report their
// duration so far.
func (s *Span) Snapshot() SpanSnapshot {
	if s == nil {
		return SpanSnapshot{}
	}
	s.mu.Lock()
	snap := SpanSnapshot{
		Name:    s.name,
		TraceID: s.traceID,
		SpanID:  s.id,
		Parent:  s.parent,
		Start:   s.start,
		DurNs:   int64(s.durationLocked()),
	}
	if len(s.attrs) > 0 {
		snap.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			snap.Attrs[k] = v
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		snap.Children = append(snap.Children, c.Snapshot())
	}
	return snap
}

// durationLocked is Duration without locking; callers must hold s.mu.
func (s *Span) durationLocked() time.Duration {
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}
