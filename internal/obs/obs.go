package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one progress update on the throttled stream.
type Event struct {
	Stage   string        // pipeline stage, e.g. "solve.exact"
	Done    int64         // work units finished so far
	Total   int64         // total work units (0 when unknown)
	Current string        // human label for the unit in flight (e.g. a ref)
	Elapsed time.Duration // since collector creation
}

// Collector is the per-run instrumentation sink: it owns the root span,
// points at a metrics registry, and fans throttled progress events to an
// optional callback.  All methods are nil-safe; the nil collector is the
// uninstrumented fast path.
type Collector struct {
	reg   *Registry
	root  *Span
	start time.Time

	onProgress  func(Event)
	minInterval time.Duration
	lastEmit    atomic.Int64 // ns since start of last emitted event

	mu   sync.Mutex
	done map[string]int64 // per-stage cumulative progress
}

// New returns a collector rooted at a span with the given name,
// recording metrics into the Default registry.  The root span starts a
// fresh trace; use NewTraced/NewWithTrace to join an existing one.
func New(rootName string) *Collector {
	root := newSpan(rootName)
	root.traceID = NewTraceID()
	return &Collector{
		reg:         Default,
		root:        root,
		start:       time.Now(),
		minInterval: 500 * time.Millisecond,
		done:        make(map[string]int64),
	}
}

// OnProgress installs a progress callback and the minimum interval
// between emitted events.  interval <= 0 keeps the default (500ms).
func (c *Collector) OnProgress(fn func(Event), interval time.Duration) {
	if c == nil {
		return
	}
	c.onProgress = fn
	if interval > 0 {
		c.minInterval = interval
	}
}

// Registry returns the collector's metrics registry (Default for
// collectors made with New; nil-safe).
func (c *Collector) Registry() *Registry {
	if c == nil {
		return Default
	}
	return c.reg
}

// Root returns the collector's root span.
func (c *Collector) Root() *Span {
	if c == nil {
		return nil
	}
	return c.root
}

// Finish ends the root span.
func (c *Collector) Finish() {
	if c == nil {
		return
	}
	c.root.End()
}

// Progress records that done-of-total units are complete for a stage and
// emits a throttled event.  done is cumulative for the stage.  The final
// event (done == total, total > 0) always emits so consumers see 100%.
func (c *Collector) Progress(stage string, done, total int64, current string) {
	if c == nil || c.onProgress == nil {
		return
	}
	elapsed := time.Since(c.start)
	final := total > 0 && done >= total
	if !final {
		last := c.lastEmit.Load()
		if elapsed-time.Duration(last) < c.minInterval {
			return
		}
		if !c.lastEmit.CompareAndSwap(last, int64(elapsed)) {
			return // another worker emitted concurrently
		}
	} else {
		c.lastEmit.Store(int64(elapsed))
	}
	c.onProgress(Event{Stage: stage, Done: done, Total: total, Current: current, Elapsed: elapsed})
}

// AddProgress accumulates delta units for a stage inside the collector
// (for many concurrent workers that each finish chunks out of order) and
// emits a throttled event with the new cumulative count.
func (c *Collector) AddProgress(stage string, delta, total int64, current string) {
	if c == nil || c.onProgress == nil {
		return
	}
	c.mu.Lock()
	c.done[stage] += delta
	done := c.done[stage]
	c.mu.Unlock()
	c.Progress(stage, done, total, current)
}

type ctxKey struct{}

// NewContext returns ctx carrying the collector.  A nil collector
// returns ctx unchanged.
func NewContext(ctx context.Context, c *Collector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, c)
}

// FromContext returns the collector carried by ctx, or nil.
func FromContext(ctx context.Context) *Collector {
	if ctx == nil {
		return nil
	}
	c, _ := ctx.Value(ctxKey{}).(*Collector)
	return c
}

type spanKey struct{}

// StartSpan opens a child span under the context's current span (or the
// collector root) and returns the derived context plus the span.  With
// no collector in ctx it returns (ctx, nil) without allocating; the nil
// span's End/SetAttr are no-ops.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	c := FromContext(ctx)
	if c == nil {
		return ctx, nil
	}
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		parent = c.root
	}
	s := newSpan(name)
	parent.addChild(s)
	return context.WithValue(ctx, spanKey{}, s), s
}
