package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
)

// Structured logging.  The dist and serve layers expose printf-style
// Logf seams so library code stays logger-agnostic; these helpers let
// the CLI back those seams with a log/slog logger whose every record
// carries correlation attributes (component, worker_id, trace_id), so
// fleet output from many processes is greppable and machine-parseable
// per sweep.

// NewLogger returns a slog logger writing to w — JSON records when
// jsonFormat, logfmt-style text otherwise — with attrs attached to
// every record.
func NewLogger(w io.Writer, jsonFormat bool, attrs ...slog.Attr) *slog.Logger {
	opts := &slog.HandlerOptions{Level: slog.LevelInfo}
	var h slog.Handler
	if jsonFormat {
		h = slog.NewJSONHandler(w, opts)
	} else {
		h = slog.NewTextHandler(w, opts)
	}
	if len(attrs) > 0 {
		h = h.WithAttrs(attrs)
	}
	return slog.New(h)
}

// Logf adapts a slog logger to the printf-style Logf seams used by the
// dist coordinator and worker: the formatted line becomes the record
// message, and the logger's pre-bound attributes (worker_id, trace_id,
// …) ride along on every record.
func Logf(l *slog.Logger) func(format string, args ...any) {
	return func(format string, args ...any) {
		l.LogAttrs(context.Background(), slog.LevelInfo, fmt.Sprintf(format, args...))
	}
}
