package obs

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestNewIDFormat(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 200; i++ {
		tid, sid := NewTraceID(), NewSpanID()
		if !validHexID(tid, 32) {
			t.Fatalf("trace id %q not 32 lowercase hex", tid)
		}
		if !validHexID(sid, 16) {
			t.Fatalf("span id %q not 16 lowercase hex", sid)
		}
		if seen[tid] || seen[sid] {
			t.Fatalf("duplicate id within 200 draws")
		}
		seen[tid], seen[sid] = true, true
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	tp := FormatTraceparent(tid, sid)
	if len(tp) != 55 {
		t.Fatalf("traceparent %q len %d, want 55", tp, len(tp))
	}
	gt, gs, ok := ParseTraceparent(tp)
	if !ok || gt != tid || gs != sid {
		t.Fatalf("ParseTraceparent(%q) = %q %q %v, want %q %q true", tp, gt, gs, ok, tid, sid)
	}
}

func TestTraceparentRejects(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	bad := []string{
		"",
		"00-" + tid + "-" + sid,              // missing flags
		"ff-" + tid + "-" + sid + "-01",      // version ff is invalid
		"00-" + tid + "-" + sid + "-01-rest", // version 00 is exactly 55 chars
		"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", // all-zero trace id
		"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", // all-zero span id
		"00-" + strings.ToUpper(tid) + "-" + sid + "-01",    // uppercase hex
		"00_" + tid + "-" + sid + "-01",                     // bad separator
	}
	for _, tp := range bad {
		if _, _, ok := ParseTraceparent(tp); ok {
			t.Errorf("ParseTraceparent(%q) accepted, want reject", tp)
		}
	}
	// Future versions are accepted when the id fields parse, including a
	// longer tail.
	if _, _, ok := ParseTraceparent("01-" + tid + "-" + sid + "-01-future"); !ok {
		t.Errorf("future-version traceparent rejected")
	}
	if FormatTraceparent("nope", sid) != "" || FormatTraceparent(tid, "") != "" {
		t.Errorf("FormatTraceparent accepted invalid ids")
	}
}

func TestSpanTraceLinking(t *testing.T) {
	col := New("root")
	if !validHexID(col.TraceID(), 32) {
		t.Fatalf("collector trace id %q invalid", col.TraceID())
	}
	ctx := NewContext(context.Background(), col)
	ctx2, parent := StartSpan(ctx, "parent")
	_, child := StartSpan(ctx2, "child")
	child.End()
	parent.End()

	if parent.TraceID() != col.TraceID() || child.TraceID() != col.TraceID() {
		t.Errorf("trace id not inherited: root %s parent %s child %s",
			col.TraceID(), parent.TraceID(), child.TraceID())
	}
	if parent.ParentID() != col.Root().SpanID() {
		t.Errorf("parent span's parent = %q, want root %q", parent.ParentID(), col.Root().SpanID())
	}
	if child.ParentID() != parent.SpanID() {
		t.Errorf("child span's parent = %q, want %q", child.ParentID(), parent.SpanID())
	}
	snap := col.Root().Snapshot()
	if snap.TraceID != col.TraceID() || snap.SpanID != col.Root().SpanID() {
		t.Errorf("snapshot ids %q/%q differ from live span", snap.TraceID, snap.SpanID)
	}
	if len(snap.Children) != 1 || snap.Children[0].Parent != snap.SpanID {
		t.Errorf("snapshot child not linked to root")
	}
}

func TestNewTracedJoinsRemoteTrace(t *testing.T) {
	tid, psid := NewTraceID(), NewSpanID()
	col := NewTraced("worker", FormatTraceparent(tid, psid))
	if col.TraceID() != tid {
		t.Errorf("trace id %q, want joined %q", col.TraceID(), tid)
	}
	if col.Root().ParentID() != psid {
		t.Errorf("root parent %q, want remote %q", col.Root().ParentID(), psid)
	}
	// Malformed traceparent starts a fresh trace instead of failing.
	fresh := NewTraced("worker", "garbage")
	if !validHexID(fresh.TraceID(), 32) || fresh.TraceID() == tid {
		t.Errorf("malformed traceparent did not mint a fresh trace")
	}
	if fresh.Root().ParentID() != "" {
		t.Errorf("fresh trace has a parent")
	}
}

func TestTraceparentFromContext(t *testing.T) {
	if tp := Traceparent(context.Background()); tp != "" {
		t.Fatalf("Traceparent without collector = %q, want empty", tp)
	}
	col := New("root")
	ctx := NewContext(context.Background(), col)
	tid, sid, ok := ParseTraceparent(Traceparent(ctx))
	if !ok || tid != col.TraceID() || sid != col.Root().SpanID() {
		t.Fatalf("context traceparent = %q %q %v, want root position", tid, sid, ok)
	}
	ctx2, span := StartSpan(ctx, "inner")
	defer span.End()
	_, sid2, _ := ParseTraceparent(Traceparent(ctx2))
	if sid2 != span.SpanID() {
		t.Fatalf("inner traceparent span %q, want current span %q", sid2, span.SpanID())
	}
}

func TestValidateTraceFile(t *testing.T) {
	f := &TraceFile{DisplayTimeUnit: "ms"}
	f.NameProcess(0, "coordinator")
	f.Add(TraceEvent{Name: "lease w0", Cat: "unit", Ph: "X", Ts: 10, Dur: 5, Tid: 1})
	f.Add(TraceEvent{Name: "stolen", Cat: "unit", Ph: "i", S: "t", Ts: 20, Tid: 1})
	blob, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ValidateTraceFile(blob)
	if err != nil {
		t.Fatalf("ValidateTraceFile: %v", err)
	}
	if !got.HasEvent("stolen") || got.HasEvent("merged") {
		t.Errorf("HasEvent misreports")
	}

	for name, blob := range map[string]string{
		"empty events": `{"traceEvents":[]}`,
		"not json":     `nope`,
		"bad phase":    `{"traceEvents":[{"name":"x","ph":"Q","ts":1}]}`,
		"unnamed":      `{"traceEvents":[{"ph":"X","ts":1}]}`,
		"negative ts":  `{"traceEvents":[{"name":"x","ph":"X","ts":-5}]}`,
	} {
		if _, err := ValidateTraceFile([]byte(blob)); err == nil {
			t.Errorf("%s: validated, want error", name)
		}
	}
}

func TestAppendSpanRendersTree(t *testing.T) {
	col := New("unit:w0")
	ctx := NewContext(context.Background(), col)
	_, s := StartSpan(ctx, "solve")
	s.End()
	col.Finish()

	var f TraceFile
	f.AppendSpan(col.Root().Snapshot(), 3, 7)
	if len(f.TraceEvents) != 2 {
		t.Fatalf("%d events, want 2 (root + child)", len(f.TraceEvents))
	}
	for _, ev := range f.TraceEvents {
		if ev.Ph != "X" || ev.Pid != 3 || ev.Tid != 7 {
			t.Errorf("event %+v: want complete event on pid 3 tid 7", ev)
		}
	}
	if f.TraceEvents[1].Args["parent_id"] != col.Root().SpanID() {
		t.Errorf("child event does not carry parent_id")
	}
}

func TestReportCarriesTraceID(t *testing.T) {
	col := New("run")
	col.Finish()
	rep := col.Report()
	rep.Program, rep.Command = "hydro", "analyze"
	if rep.TraceID != col.TraceID() {
		t.Fatalf("report trace id %q, want %q", rep.TraceID, col.TraceID())
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateRunReport(blob); err != nil {
		t.Fatalf("ValidateRunReport: %v", err)
	}
}
