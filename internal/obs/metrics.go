// Package obs is a zero-dependency instrumentation layer for the CME
// pipeline: a lock-light metrics registry (atomic counters, gauges and
// fixed-bucket histograms), hierarchical wall-time spans, a throttled
// progress stream, and exporters (Prometheus text, expvar, JSON run
// reports).
//
// The package is designed around a nil-sink fast path: every entry point
// that hot code touches is either a plain atomic on a package-global
// metric (one uncontended atomic add per coarse-grained flush) or a
// nil-safe method on a *Collector / *Span that returns immediately when
// no collector is installed.  Hot loops must accumulate into plain local
// integers and flush at tile / classifier-release boundaries, never
// per point.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil || d == 0 {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket integer histogram.  Buckets are upper
// bounds (inclusive), sorted ascending; observations above the last
// bound land in the implicit +Inf bucket.  Counts are per-bucket
// (non-cumulative) internally; exporters cumulate as needed.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last is +Inf
	sum    atomic.Int64
	total  atomic.Int64
}

func newHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	sort.Slice(b, func(i, j int) bool { return b[i] < b[j] })
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

func (h *Histogram) bucketFor(v int64) int {
	// Bucket counts are tiny (≤ a dozen); linear scan beats binary
	// search for the sizes we use.
	for i, ub := range h.bounds {
		if v <= ub {
			return i
		}
	}
	return len(h.bounds)
}

// Observe records a single value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.counts[h.bucketFor(v)].Add(1)
	h.sum.Add(v)
	h.total.Add(1)
}

// ObserveN records a value observed n times (used when flushing a
// LocalHistogram).
func (h *Histogram) observeBucket(i int, n, sum int64) {
	h.counts[i].Add(n)
	h.sum.Add(sum)
	h.total.Add(n)
}

// Bounds returns the configured upper bounds.
func (h *Histogram) Bounds() []int64 {
	if h == nil {
		return nil
	}
	return h.bounds
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1, last is +Inf
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.total.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// LocalHistogram is a non-atomic scratch histogram for hot loops: a
// worker observes locally and flushes the accumulated buckets into the
// shared Histogram once, at a tile or release boundary.
type LocalHistogram struct {
	h      *Histogram
	counts []int64
	sums   []int64
}

// NewLocal returns a local accumulator for h.  A nil receiver yields a
// nil local, whose methods are all no-ops.
func (h *Histogram) NewLocal() *LocalHistogram {
	if h == nil {
		return nil
	}
	return &LocalHistogram{h: h, counts: make([]int64, len(h.counts)), sums: make([]int64, len(h.counts))}
}

// Observe records a value locally (no atomics).
func (l *LocalHistogram) Observe(v int64) {
	if l == nil {
		return
	}
	i := l.h.bucketFor(v)
	l.counts[i]++
	l.sums[i] += v
}

// Flush pushes the local buckets into the shared histogram and resets
// the local state.
func (l *LocalHistogram) Flush() {
	if l == nil {
		return
	}
	for i, n := range l.counts {
		if n != 0 {
			l.h.observeBucket(i, n, l.sums[i])
			l.counts[i] = 0
			l.sums[i] = 0
		}
	}
}

// Registry holds named metrics.  Get-or-create calls take a mutex, but
// they run once per metric at package init / first use; the returned
// pointers are stable and all subsequent updates are lock-free atomics.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*Counter),
		gauges: make(map[string]*Gauge),
		hists:  make(map[string]*Histogram),
	}
}

// Default is the package-global registry.  Pipeline packages register
// their metrics here at init time; exporters snapshot it.
var Default = NewRegistry()

func validName(name string) {
	if name == "" {
		panic("obs: empty metric name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9' && i > 0, c == '_':
		default:
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	validName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counts[name]
	if !ok {
		c = &Counter{}
		r.counts[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	validName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use.  Later calls ignore bounds.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	validName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of every metric in a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies all current metric values.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counts)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counts {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// names returns the sorted metric names of each kind (for exporters).
func (r *Registry) names() (counters, gauges, hists []string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for n := range r.counts {
		counters = append(counters, n)
	}
	for n := range r.gauges {
		gauges = append(gauges, n)
	}
	for n := range r.hists {
		hists = append(hists, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}
