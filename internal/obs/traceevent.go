package obs

import (
	"encoding/json"
	"fmt"
)

// Chrome trace-event export.  A TraceFile is the JSON object format of
// the Chrome trace-event spec — load it at ui.perfetto.dev or
// chrome://tracing.  The coordinator assembles one file per sweep from
// its own unit timelines plus the span shards workers post back with
// each completed unit, so a single file shows the whole fleet.

// TraceEvent is one event in a Chrome trace.  Ph selects the event
// type: "X" complete (Ts..Ts+Dur), "i" instant (S is its scope, "t"
// thread / "p" process / "g" global), "M" metadata (process_name /
// thread_name with the name in Args).
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"` // microseconds
	Dur  int64          `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the top-level trace-event JSON object.
type TraceFile struct {
	TraceEvents     []TraceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit,omitempty"`
	Metadata        map[string]any `json:"metadata,omitempty"`
}

// Add appends one event.
func (f *TraceFile) Add(e TraceEvent) {
	f.TraceEvents = append(f.TraceEvents, e)
}

// NameProcess attaches a display name to a pid track.
func (f *TraceFile) NameProcess(pid int, name string) {
	f.Add(TraceEvent{Name: "process_name", Ph: "M", Pid: pid, Args: map[string]any{"name": name}})
}

// NameThread attaches a display name to a tid track within a pid.
func (f *TraceFile) NameThread(pid, tid int, name string) {
	f.Add(TraceEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
}

// AppendSpan converts a span subtree into nested "X" complete events on
// the given pid/tid track.  Span ids ride along in args so the Perfetto
// view can be cross-referenced with run-report span trees and logs.
func (f *TraceFile) AppendSpan(s SpanSnapshot, pid, tid int) {
	args := map[string]any{}
	if s.SpanID != "" {
		args["span_id"] = s.SpanID
	}
	if s.Parent != "" {
		args["parent_id"] = s.Parent
	}
	for k, v := range s.Attrs {
		args[k] = v
	}
	if len(args) == 0 {
		args = nil
	}
	f.Add(TraceEvent{
		Name: s.Name,
		Cat:  "span",
		Ph:   "X",
		Ts:   s.Start.UnixMicro(),
		Dur:  s.DurNs / 1e3,
		Pid:  pid,
		Tid:  tid,
		Args: args,
	})
	for _, c := range s.Children {
		f.AppendSpan(c, pid, tid)
	}
}

// HasEvent reports whether any event has the given name.
func (f *TraceFile) HasEvent(name string) bool {
	for _, e := range f.TraceEvents {
		if e.Name == name {
			return true
		}
	}
	return false
}

// WriteFile marshals the trace and writes it atomically.
func (f *TraceFile) WriteFile(path string) error {
	blob, err := json.MarshalIndent(f, "", " ")
	if err != nil {
		return err
	}
	return WriteFileAtomic(path, blob)
}

// ValidateTraceFile parses and sanity-checks a trace-event JSON blob:
// it must decode, contain at least one event, and every event must be
// named, carry a known phase, and have non-negative timing.  Returns
// the parsed file so callers can assert on content (obscheck -trace
// additionally requires a stolen-unit timeline in dist smoke runs).
func ValidateTraceFile(blob []byte) (*TraceFile, error) {
	var f TraceFile
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("trace file: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return nil, fmt.Errorf("trace file: no events")
	}
	for i, e := range f.TraceEvents {
		if e.Name == "" {
			return nil, fmt.Errorf("trace file: event %d unnamed", i)
		}
		switch e.Ph {
		case "X", "i", "M", "B", "E", "C":
		default:
			return nil, fmt.Errorf("trace file: event %d (%s) has unknown phase %q", i, e.Name, e.Ph)
		}
		if e.Ph != "M" && e.Ts < 0 {
			return nil, fmt.Errorf("trace file: event %d (%s) has negative ts", i, e.Name)
		}
		if e.Dur < 0 {
			return nil, fmt.Errorf("trace file: event %d (%s) has negative dur", i, e.Name)
		}
	}
	return &f, nil
}
