package obs

import (
	"context"
	"encoding/hex"
	"math/rand/v2"
)

// Distributed tracing ids.  A trace id names one logical operation end
// to end (a sweep, a serve job); every span minted while a collector is
// live carries the collector's trace id plus its own span id, and spans
// link to their parent by id, so span shards recorded in different
// processes can be stitched back into one tree.  Ids follow the W3C
// trace-context shape (16-byte trace id, 8-byte span id, lowercase hex)
// so the propagation header is a plain `traceparent`.
//
// Id generation uses math/rand/v2's process-seeded generator: ids need
// to be unique within a fleet with overwhelming probability, not
// unguessable, and the lock-free generator keeps StartSpan cheap.  The
// nil-sink property is preserved: without a collector no span — and
// therefore no id — is ever allocated.

// TraceparentHeader is the HTTP header used to propagate trace context
// across the serve -> coordinator -> worker hops.
const TraceparentHeader = "traceparent"

// NewTraceID returns a fresh 32-hex-digit trace id.
func NewTraceID() string {
	var b [16]byte
	u, v := rand.Uint64(), rand.Uint64()
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
		b[8+i] = byte(v >> (8 * i))
	}
	if isZero(b[:]) {
		b[0] = 1 // the all-zero id is invalid per trace-context
	}
	return hex.EncodeToString(b[:])
}

// NewSpanID returns a fresh 16-hex-digit span id.
func NewSpanID() string {
	var b [8]byte
	u := rand.Uint64()
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	if isZero(b[:]) {
		b[0] = 1
	}
	return hex.EncodeToString(b[:])
}

func isZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// FormatTraceparent renders a version-00 traceparent header value with
// the sampled flag set.  Empty if either id is invalid.
func FormatTraceparent(traceID, spanID string) string {
	if !validHexID(traceID, 32) || !validHexID(spanID, 16) {
		return ""
	}
	return "00-" + traceID + "-" + spanID + "-01"
}

// ParseTraceparent splits a version-00 traceparent header value into
// its trace id and parent span id.  Malformed values return ok=false;
// future versions (non-"00") are accepted as long as the id fields
// parse, per the trace-context forward-compatibility rule.
func ParseTraceparent(tp string) (traceID, spanID string, ok bool) {
	// version "-" traceid "-" spanid "-" flags
	if len(tp) < 55 || tp[2] != '-' || tp[35] != '-' || tp[52] != '-' {
		return "", "", false
	}
	ver, tid, sid := tp[:2], tp[3:35], tp[36:52]
	// The version is plain hex ("00" is the norm — all-zero is fine here,
	// unlike the ids); "ff" is forbidden by the spec.
	if !hexDigits(ver) || ver == "ff" || !validHexID(tid, 32) || !validHexID(sid, 16) {
		return "", "", false
	}
	if len(tp) > 55 && ver == "00" {
		return "", "", false // version 00 is exactly 55 chars
	}
	return tid, sid, true
}

// validHexID reports whether s is exactly n lowercase hex digits and
// not all zeros.
func validHexID(s string, n int) bool {
	if len(s) != n || !hexDigits(s) {
		return false
	}
	for i := 0; i < n; i++ {
		if s[i] != '0' {
			return true
		}
	}
	return false
}

// hexDigits reports whether s is all lowercase hex digits.
func hexDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c >= '0' && c <= '9' || c >= 'a' && c <= 'f') {
			return false
		}
	}
	return true
}

// NewTraced returns a collector like New whose root span joins the
// trace described by a traceparent header value: the root keeps the
// remote trace id and records the remote span as its parent.  An empty
// or malformed traceparent starts a fresh trace (same as New).
func NewTraced(rootName, traceparent string) *Collector {
	tid, psid, _ := ParseTraceparent(traceparent)
	return NewWithTrace(rootName, tid, psid)
}

// NewWithTrace returns a collector like New with explicit trace
// context: traceID names the trace to join (fresh when empty or
// invalid) and parentSpan, when valid, is recorded as the root span's
// remote parent.
func NewWithTrace(rootName, traceID, parentSpan string) *Collector {
	c := New(rootName)
	if validHexID(traceID, 32) {
		c.root.traceID = traceID
	}
	if validHexID(parentSpan, 16) {
		c.root.parent = parentSpan
	}
	return c
}

// TraceID returns the collector's trace id ("" for nil).
func (c *Collector) TraceID() string {
	if c == nil {
		return ""
	}
	return c.root.TraceID()
}

// CurrentSpan returns the span the context is inside (the innermost
// StartSpan, else the collector root), or nil without a collector.
func CurrentSpan(ctx context.Context) *Span {
	c := FromContext(ctx)
	if c == nil {
		return nil
	}
	if s, _ := ctx.Value(spanKey{}).(*Span); s != nil {
		return s
	}
	return c.root
}

// Traceparent renders the context's current trace position as a
// traceparent header value, or "" when ctx carries no collector — so
// uninstrumented callers propagate nothing and pay nothing.
func Traceparent(ctx context.Context) string {
	c := FromContext(ctx)
	if c == nil {
		return ""
	}
	return FormatTraceparent(c.TraceID(), CurrentSpan(ctx).SpanID())
}
