package qpoly

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cachemodel/internal/linalg"
)

// Inf marks an unbounded chamber upper end.
const Inf = int64(math.MaxInt64)

// Piece is one chamber of a piecewise quasi-polynomial: the closed
// interval [Lo, Hi] of the parameter (Hi == Inf for the unbounded tail)
// together with the quasi-polynomial valid on it.
type Piece struct {
	Lo, Hi int64
	Poly   QPoly
}

// Piecewise is a quasi-polynomial defined piecewise over disjoint,
// ascending chambers of the integer parameter. The zero value is defined
// nowhere.
type Piecewise struct {
	pieces []Piece
}

// FromPieces validates and assembles a piecewise quasi-polynomial. The
// pieces may be given in any order but must be disjoint.
func FromPieces(ps []Piece) (Piecewise, error) {
	out := append([]Piece(nil), ps...)
	sort.Slice(out, func(i, j int) bool { return out[i].Lo < out[j].Lo })
	for i, p := range out {
		if p.Hi < p.Lo {
			return Piecewise{}, fmt.Errorf("qpoly: empty chamber [%d, %d]", p.Lo, p.Hi)
		}
		if i > 0 && p.Lo <= out[i-1].Hi {
			return Piecewise{}, fmt.Errorf("qpoly: overlapping chambers [%d, %d] and [%d, %d]",
				out[i-1].Lo, out[i-1].Hi, p.Lo, p.Hi)
		}
	}
	return Piecewise{pieces: out}, nil
}

// Pieces returns the chambers in ascending order (shared slice; treat as
// read-only).
func (pw Piecewise) Pieces() []Piece { return pw.pieces }

// Domain returns the smallest and largest covered parameter values
// (hi == Inf when the tail is unbounded); ok is false for the empty
// piecewise.
func (pw Piecewise) Domain() (lo, hi int64, ok bool) {
	if len(pw.pieces) == 0 {
		return 0, 0, false
	}
	return pw.pieces[0].Lo, pw.pieces[len(pw.pieces)-1].Hi, true
}

// find returns the chamber covering n, or nil.
func (pw Piecewise) find(n int64) *Piece {
	i := sort.Search(len(pw.pieces), func(i int) bool { return pw.pieces[i].Hi >= n })
	if i < len(pw.pieces) && pw.pieces[i].Lo <= n {
		return &pw.pieces[i]
	}
	return nil
}

// Eval returns the value at n; ok is false when no chamber covers n.
func (pw Piecewise) Eval(n int64) (linalg.Rat, bool) {
	p := pw.find(n)
	if p == nil {
		return linalg.Rat{}, false
	}
	return p.Poly.Eval(n), true
}

// EvalInt returns the value at n as an int64; ok is false when no chamber
// covers n or the value is not an integer.
func (pw Piecewise) EvalInt(n int64) (int64, bool) {
	p := pw.find(n)
	if p == nil {
		return 0, false
	}
	return p.Poly.EvalInt(n)
}

// combine returns the piecewise combination of pw and other under op,
// defined on the intersection of their domains with chambers refined at
// both operands' breakpoints.
func (pw Piecewise) combine(other Piecewise, op func(QPoly, QPoly) QPoly) Piecewise {
	var out []Piece
	for _, a := range pw.pieces {
		for _, b := range other.pieces {
			lo, hi := a.Lo, a.Hi
			if b.Lo > lo {
				lo = b.Lo
			}
			if b.Hi < hi {
				hi = b.Hi
			}
			if lo > hi {
				continue
			}
			out = append(out, Piece{Lo: lo, Hi: hi, Poly: op(a.Poly, b.Poly)})
		}
	}
	res, err := FromPieces(out)
	if err != nil { // impossible: intersections of disjoint families are disjoint
		panic(err)
	}
	return res.Canon()
}

// Add returns pw + other on the intersection of their domains.
func (pw Piecewise) Add(other Piecewise) Piecewise {
	return pw.combine(other, QPoly.Add)
}

// Sub returns pw − other on the intersection of their domains.
func (pw Piecewise) Sub(other Piecewise) Piecewise {
	return pw.combine(other, QPoly.Sub)
}

// Mul returns pw × other on the intersection of their domains.
func (pw Piecewise) Mul(other Piecewise) Piecewise {
	return pw.combine(other, QPoly.Mul)
}

// Canon merges adjacent chambers whose quasi-polynomials are equal and
// canonicalizes each chamber's polynomial.
func (pw Piecewise) Canon() Piecewise {
	var out []Piece
	for _, p := range pw.pieces {
		p.Poly = p.Poly.Canon()
		if n := len(out); n > 0 && out[n-1].Hi != Inf && out[n-1].Hi+1 == p.Lo && out[n-1].Poly.Equal(p.Poly) {
			out[n-1].Hi = p.Hi
			continue
		}
		out = append(out, p)
	}
	return Piecewise{pieces: out}
}

// Equal reports whether pw and other cover the same domain with equal
// values everywhere on it.
func (pw Piecewise) Equal(other Piecewise) bool {
	a, b := pw.Canon(), other.Canon()
	if len(a.pieces) != len(b.pieces) {
		return false
	}
	for i := range a.pieces {
		pa, pb := a.pieces[i], b.pieces[i]
		if pa.Lo != pb.Lo || pa.Hi != pb.Hi || !pa.Poly.Equal(pb.Poly) {
			return false
		}
	}
	return true
}

// IsZero reports whether pw is identically zero on its whole domain (an
// empty piecewise is zero vacuously).
func (pw Piecewise) IsZero() bool {
	for _, p := range pw.pieces {
		if !p.Poly.IsZero() {
			return false
		}
	}
	return true
}

// String renders the chambers in order.
func (pw Piecewise) String() string {
	if len(pw.pieces) == 0 {
		return "(empty)"
	}
	var parts []string
	for _, p := range pw.pieces {
		hi := "∞"
		if p.Hi != Inf {
			hi = fmt.Sprintf("%d", p.Hi)
		}
		parts = append(parts, fmt.Sprintf("n∈[%d,%s]: %s", p.Lo, hi, p.Poly))
	}
	return strings.Join(parts, " | ")
}
