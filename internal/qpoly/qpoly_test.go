package qpoly

import (
	"testing"

	"cachemodel/internal/linalg"
)

func rat(n, d int64) linalg.Rat { return linalg.NewRat(n, d) }

// q1 is the canonical Ehrhart example: ⌊n/2⌋ + 1 = n/2 + 1 for even n,
// (n+1)/2 for odd n — period 2, degree 1.
func halfFloorPlusOne() QPoly {
	return New([][]linalg.Rat{
		{rat(1, 1), rat(1, 2)}, // n even: 1 + n/2
		{rat(1, 2), rat(1, 2)}, // n odd: 1/2 + n/2
	})
}

func TestQPolyEval(t *testing.T) {
	q := halfFloorPlusOne()
	for n := int64(-5); n <= 20; n++ {
		want := n/2 + 1
		if n < 0 && n%2 != 0 {
			want = (n - 1) / 2 // floor division for negative odd n
		}
		want = floorDiv(n, 2) + 1
		got, ok := q.EvalInt(n)
		if !ok || got != want {
			t.Fatalf("Eval(%d): got %d (ok=%v), want %d", n, got, ok, want)
		}
	}
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}

func TestQPolyArith(t *testing.T) {
	q := halfFloorPlusOne()
	x := X()
	sum := q.Add(x)
	prod := q.Mul(x)
	diff := sum.Sub(x)
	for n := int64(0); n <= 16; n++ {
		qv := q.Eval(n)
		if got := sum.Eval(n); got.Cmp(qv.Add(linalg.RatInt(n))) != 0 {
			t.Fatalf("Add at %d: %s", n, got)
		}
		if got := prod.Eval(n); got.Cmp(qv.Mul(linalg.RatInt(n))) != 0 {
			t.Fatalf("Mul at %d: %s", n, got)
		}
		if got := diff.Eval(n); got.Cmp(qv) != 0 {
			t.Fatalf("Sub roundtrip at %d: %s vs %s", n, got, qv)
		}
	}
	if !diff.Equal(q) {
		t.Fatalf("Equal: (q+x)-x != q: %s vs %s", diff, q)
	}
}

func TestQPolyCanonReducesPeriod(t *testing.T) {
	// Period-4 rows that are really period-2.
	rows := [][]linalg.Rat{
		{rat(1, 1)}, {rat(2, 1)}, {rat(1, 1)}, {rat(2, 1)},
	}
	q := New(rows)
	if q.Period() != 2 {
		t.Fatalf("Canon period: got %d, want 2", q.Period())
	}
	// A constant written with period 3 reduces to period 1.
	c := New([][]linalg.Rat{{rat(7, 2)}, {rat(7, 2)}, {rat(7, 2)}})
	if c.Period() != 1 || c.Degree() != 0 {
		t.Fatalf("Canon constant: period %d degree %d", c.Period(), c.Degree())
	}
	// Trailing zero coefficients trim.
	z := New([][]linalg.Rat{{rat(1, 1), {}, {}}})
	if z.Degree() != 0 {
		t.Fatalf("Canon trim: degree %d, want 0", z.Degree())
	}
	if !Zero().Equal(New([][]linalg.Rat{{}, {}})) {
		t.Fatal("zero equality across periods")
	}
}

func TestFitPolyExactAndVerify(t *testing.T) {
	// f(n) = (3n² − n)/2 sampled at 5 points; degree 2 fit must verify the
	// 2 extra points and reproduce the coefficients exactly.
	f := func(n int64) linalg.Rat {
		return rat(3*n*n-n, 2)
	}
	var ss []Sample
	for _, n := range []int64{4, 7, 10, 13, 16} {
		ss = append(ss, Sample{N: n, V: f(n)})
	}
	coef, err := FitPoly(2, ss)
	if err != nil {
		t.Fatal(err)
	}
	want := []linalg.Rat{{}, rat(-1, 2), rat(3, 2)}
	for d, w := range want {
		if coef[d].Cmp(w) != 0 {
			t.Fatalf("coef[%d]: got %s, want %s", d, coef[d], w)
		}
	}
	// Perturb one holdout sample: verification must fail.
	ss[4].V = ss[4].V.Add(rat(1, 1))
	if _, err := FitPoly(2, ss); err == nil {
		t.Fatal("perturbed fit verified unexpectedly")
	}
}

func TestFitQuasiPolynomial(t *testing.T) {
	// f(n) = n²/4 for even n, (n²−1)/4 for odd n (= ⌊n²/4⌋): period 2,
	// degree 2. Sample each residue at 4 points (3 fit + 1 verify).
	f := func(n int64) linalg.Rat { return rat(n*n-mod(n, 2), 4) }
	var ss []Sample
	for n := int64(10); n < 18; n++ {
		ss = append(ss, Sample{N: n, V: f(n)})
	}
	q, err := Fit(2, 2, ss)
	if err != nil {
		t.Fatal(err)
	}
	for n := int64(0); n <= 40; n++ {
		if got := q.Eval(n); got.Cmp(f(n)) != 0 {
			t.Fatalf("Fit eval at %d: got %s, want %s", n, got, f(n))
		}
	}
	// Missing residue: period 4 with samples only covering two classes.
	if _, err := Fit(4, 2, ss[:4]); err == nil {
		t.Fatal("Fit with uncovered residues succeeded unexpectedly")
	}
}

func TestPiecewise(t *testing.T) {
	q := halfFloorPlusOne()
	pw, err := FromPieces([]Piece{
		{Lo: 0, Hi: 9, Poly: ConstInt(5)},
		{Lo: 10, Hi: Inf, Poly: q},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := pw.EvalInt(3); !ok || v != 5 {
		t.Fatalf("piece 1 eval: %d %v", v, ok)
	}
	if v, ok := pw.EvalInt(12); !ok || v != 7 {
		t.Fatalf("piece 2 eval: %d %v", v, ok)
	}
	if _, ok := pw.EvalInt(-1); ok {
		t.Fatal("eval outside domain succeeded")
	}
	// Overlap is rejected.
	if _, err := FromPieces([]Piece{{Lo: 0, Hi: 5}, {Lo: 5, Hi: 9}}); err == nil {
		t.Fatal("overlapping chambers accepted")
	}
	// Arithmetic refines chambers on the domain intersection.
	other, _ := FromPieces([]Piece{{Lo: 5, Hi: Inf, Poly: X()}})
	sum := pw.Add(other)
	if lo, hi, ok := sum.Domain(); !ok || lo != 5 || hi != Inf {
		t.Fatalf("combined domain: [%d, %d] ok=%v", lo, hi, ok)
	}
	for _, n := range []int64{5, 9, 10, 11, 31} {
		a, _ := pw.Eval(n)
		b, _ := other.Eval(n)
		got, ok := sum.Eval(n)
		if !ok || got.Cmp(a.Add(b)) != 0 {
			t.Fatalf("piecewise Add at %d: %s", n, got)
		}
	}
	// Canon merges adjacent chambers with equal polynomials.
	frag, _ := FromPieces([]Piece{
		{Lo: 0, Hi: 4, Poly: X()},
		{Lo: 5, Hi: 9, Poly: X()},
		{Lo: 10, Hi: Inf, Poly: X()},
	})
	if got := len(frag.Canon().Pieces()); got != 1 {
		t.Fatalf("Canon merge: %d pieces, want 1", got)
	}
	whole, _ := FromPieces([]Piece{{Lo: 0, Hi: Inf, Poly: X()}})
	if !frag.Equal(whole) {
		t.Fatal("Equal after merge")
	}
}
