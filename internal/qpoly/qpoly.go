// Package qpoly implements univariate quasi-polynomials with exact
// rational coefficients: functions of an integer parameter n whose value
// is a polynomial in n with coefficients that depend periodically on
// n mod L. By Ehrhart's theorem the number of lattice points of a
// parametric polytope whose facets move affinely with n is exactly such a
// function (piecewise, over "chambers" of n where the combinatorial
// structure is constant), which is what lets the cache model answer
// size-scaling questions with one symbolic solve and O(1) evaluation per
// size instead of re-enumerating each iteration space.
//
// The companion Piecewise type carries a quasi-polynomial per chamber
// (an interval of n), and Fit recovers the exact coefficients from
// sampled values by rational interpolation.
package qpoly

import (
	"fmt"
	"strings"

	"cachemodel/internal/linalg"
)

// QPoly is a quasi-polynomial: value(n) = Σ_d coef[n mod L][d] · n^d,
// where L is the period of the coefficient pattern. The zero value is the
// zero quasi-polynomial (period 1, no coefficients). Coefficients are
// exact rationals; arithmetic on them panics with *linalg.OverflowError
// rather than silently wrapping.
type QPoly struct {
	period int64
	// coef[r] holds the coefficient vector (index = degree) used when
	// n ≡ r (mod period); rows may have different lengths.
	coef [][]linalg.Rat
}

// Zero returns the zero quasi-polynomial.
func Zero() QPoly { return QPoly{} }

// Const returns the constant quasi-polynomial c.
func Const(c linalg.Rat) QPoly {
	if c.IsZero() {
		return Zero()
	}
	return QPoly{period: 1, coef: [][]linalg.Rat{{c}}}
}

// ConstInt returns the constant quasi-polynomial c.
func ConstInt(c int64) QPoly { return Const(linalg.RatInt(c)) }

// X returns the identity quasi-polynomial n ↦ n.
func X() QPoly {
	return QPoly{period: 1, coef: [][]linalg.Rat{{linalg.RatInt(0), linalg.RatInt(1)}}}
}

// New builds a quasi-polynomial from explicit per-residue coefficient
// rows: coef[r][d] multiplies n^d when n ≡ r (mod len(coef)). The rows
// are copied. New panics if coef is empty.
func New(coef [][]linalg.Rat) QPoly {
	if len(coef) == 0 {
		panic("qpoly: New needs at least one residue row")
	}
	q := QPoly{period: int64(len(coef)), coef: make([][]linalg.Rat, len(coef))}
	for r, row := range coef {
		q.coef[r] = append([]linalg.Rat(nil), row...)
	}
	return q.Canon()
}

// Period returns the coefficient period L (1 for a plain polynomial,
// including the zero quasi-polynomial).
func (q QPoly) Period() int64 {
	if q.period == 0 {
		return 1
	}
	return q.period
}

// Degree returns the largest degree with a non-zero coefficient in any
// residue row, or -1 for the zero quasi-polynomial.
func (q QPoly) Degree() int {
	deg := -1
	for _, row := range q.coef {
		for d := len(row) - 1; d >= 0; d-- {
			if !row[d].IsZero() && d > deg {
				deg = d
			}
		}
	}
	return deg
}

// IsZero reports whether q is identically zero.
func (q QPoly) IsZero() bool { return q.Degree() < 0 }

// mod returns the representative of n modulo m in [0, m).
func mod(n, m int64) int64 {
	r := n % m
	if r < 0 {
		r += m
	}
	return r
}

// row returns the coefficient row active at n (nil for the zero value).
func (q QPoly) row(n int64) []linalg.Rat {
	if len(q.coef) == 0 {
		return nil
	}
	return q.coef[mod(n, q.period)]
}

// Eval returns q(n) as an exact rational, by Horner evaluation of the
// residue row active at n.
func (q QPoly) Eval(n int64) linalg.Rat {
	row := q.row(n)
	v := linalg.RatInt(0)
	x := linalg.RatInt(n)
	for d := len(row) - 1; d >= 0; d-- {
		v = v.Mul(x).Add(row[d])
	}
	return v
}

// EvalInt returns q(n) as an int64, reporting whether the value is an
// integer (lattice-point counts always are; a false return means the
// quasi-polynomial does not describe a count at this n).
func (q QPoly) EvalInt(n int64) (int64, bool) {
	return q.Eval(n).Int()
}

// lift returns q's coefficient rows re-indexed modulo L (a multiple of
// q's period).
func (q QPoly) lift(L int64) [][]linalg.Rat {
	rows := make([][]linalg.Rat, L)
	for r := int64(0); r < L; r++ {
		rows[r] = q.row(r)
	}
	return rows
}

// Add returns q + p; the result's period is lcm of the operands'.
func (q QPoly) Add(p QPoly) QPoly {
	L := linalg.LCM(q.Period(), p.Period())
	a, b := q.lift(L), p.lift(L)
	out := make([][]linalg.Rat, L)
	for r := int64(0); r < L; r++ {
		n := len(a[r])
		if len(b[r]) > n {
			n = len(b[r])
		}
		row := make([]linalg.Rat, n)
		for d := 0; d < n; d++ {
			var x, y linalg.Rat
			if d < len(a[r]) {
				x = a[r][d]
			}
			if d < len(b[r]) {
				y = b[r][d]
			}
			row[d] = x.Add(y)
		}
		out[r] = row
	}
	return (QPoly{period: L, coef: out}).Canon()
}

// Neg returns −q.
func (q QPoly) Neg() QPoly { return q.Scale(linalg.RatInt(-1)) }

// Sub returns q − p.
func (q QPoly) Sub(p QPoly) QPoly { return q.Add(p.Neg()) }

// Scale returns c·q.
func (q QPoly) Scale(c linalg.Rat) QPoly {
	if c.IsZero() || len(q.coef) == 0 {
		return Zero()
	}
	out := make([][]linalg.Rat, len(q.coef))
	for r, row := range q.coef {
		nr := make([]linalg.Rat, len(row))
		for d, v := range row {
			nr[d] = v.Mul(c)
		}
		out[r] = nr
	}
	return (QPoly{period: q.period, coef: out}).Canon()
}

// Mul returns q × p; per residue the coefficient rows convolve, and the
// result's period is lcm of the operands'.
func (q QPoly) Mul(p QPoly) QPoly {
	if q.IsZero() || p.IsZero() {
		return Zero()
	}
	L := linalg.LCM(q.Period(), p.Period())
	a, b := q.lift(L), p.lift(L)
	out := make([][]linalg.Rat, L)
	for r := int64(0); r < L; r++ {
		if len(a[r]) == 0 || len(b[r]) == 0 {
			out[r] = nil
			continue
		}
		row := make([]linalg.Rat, len(a[r])+len(b[r])-1)
		for i, x := range a[r] {
			if x.IsZero() {
				continue
			}
			for j, y := range b[r] {
				row[i+j] = row[i+j].Add(x.Mul(y))
			}
		}
		out[r] = row
	}
	return (QPoly{period: L, coef: out}).Canon()
}

// Canon returns the canonical form of q: trailing zero coefficients are
// trimmed per residue row, and the period is reduced to the smallest
// divisor under which all residue rows agree. Equal quasi-polynomials
// have identical canonical forms.
func (q QPoly) Canon() QPoly {
	if len(q.coef) == 0 {
		return QPoly{}
	}
	rows := make([][]linalg.Rat, len(q.coef))
	for r, row := range q.coef {
		n := len(row)
		for n > 0 && row[n-1].IsZero() {
			n--
		}
		rows[r] = row[:n]
	}
	L := int64(len(rows))
	// Smallest divisor m of L with rows[r] == rows[r mod m] for all r.
	for m := int64(1); m <= L; m++ {
		if L%m != 0 {
			continue
		}
		ok := true
		for r := int64(0); r < L && ok; r++ {
			ok = rowsEqual(rows[r], rows[mod(r, m)])
		}
		if ok {
			out := make([][]linalg.Rat, m)
			for r := int64(0); r < m; r++ {
				out[r] = append([]linalg.Rat(nil), rows[r]...)
			}
			if m == 1 && len(out[0]) == 0 {
				return QPoly{}
			}
			return QPoly{period: m, coef: out}
		}
	}
	return QPoly{period: L, coef: rows} // unreachable: m == L always agrees
}

func rowsEqual(a, b []linalg.Rat) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Cmp(b[i]) != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether q and p take the same value at every integer.
func (q QPoly) Equal(p QPoly) bool {
	L := linalg.LCM(q.Period(), p.Period())
	a, b := q.lift(L), p.lift(L)
	for r := int64(0); r < L; r++ {
		// Compare padded rows: degree mismatch with zero tail is fine.
		n := len(a[r])
		if len(b[r]) > n {
			n = len(b[r])
		}
		for d := 0; d < n; d++ {
			var x, y linalg.Rat
			if d < len(a[r]) {
				x = a[r][d]
			}
			if d < len(b[r]) {
				y = b[r][d]
			}
			if x.Cmp(y) != 0 {
				return false
			}
		}
	}
	return true
}

// String renders q per residue, e.g. "[n≡0 (mod 2)] 1/2·n^2 + n".
func (q QPoly) String() string {
	if q.IsZero() {
		return "0"
	}
	c := q.Canon()
	var sb strings.Builder
	for r, row := range c.coef {
		if r > 0 {
			sb.WriteString("; ")
		}
		if c.period > 1 {
			fmt.Fprintf(&sb, "[n≡%d (mod %d)] ", r, c.period)
		}
		sb.WriteString(rowString(row))
	}
	return sb.String()
}

func rowString(row []linalg.Rat) string {
	var terms []string
	for d := len(row) - 1; d >= 0; d-- {
		c := row[d]
		if c.IsZero() {
			continue
		}
		var t string
		switch {
		case d == 0:
			t = c.String()
		case d == 1:
			t = coeffPrefix(c) + "n"
		default:
			t = fmt.Sprintf("%sn^%d", coeffPrefix(c), d)
		}
		terms = append(terms, t)
	}
	if len(terms) == 0 {
		return "0"
	}
	return strings.Join(terms, " + ")
}

func coeffPrefix(c linalg.Rat) string {
	if c.Cmp(linalg.RatInt(1)) == 0 {
		return ""
	}
	return c.String() + "·"
}
