package qpoly

import (
	"fmt"
	"sort"

	"cachemodel/internal/linalg"
)

// Sample is one observed value of the function being fitted.
type Sample struct {
	N int64
	V linalg.Rat
}

// FitPoly recovers the unique polynomial of degree ≤ deg through the
// first deg+1 samples by Newton's divided differences (exact rational
// arithmetic), then verifies it reproduces every remaining sample.
// The returned slice is the coefficient vector in the power basis
// (index = degree). Samples must have pairwise distinct N; an error means
// either a duplicate abscissa or a verification mismatch — i.e. the data
// is not polynomial of the claimed degree over the sampled range.
func FitPoly(deg int, samples []Sample) ([]linalg.Rat, error) {
	if deg < 0 {
		return nil, fmt.Errorf("qpoly: negative degree %d", deg)
	}
	if len(samples) < deg+1 {
		return nil, fmt.Errorf("qpoly: need %d samples for degree %d, have %d",
			deg+1, deg, len(samples))
	}
	ss := append([]Sample(nil), samples...)
	sort.Slice(ss, func(i, j int) bool { return ss[i].N < ss[j].N })
	for i := 1; i < len(ss); i++ {
		if ss[i].N == ss[i-1].N {
			return nil, fmt.Errorf("qpoly: duplicate sample abscissa %d", ss[i].N)
		}
	}
	fit := ss[:deg+1]

	// Newton divided differences: dd[j] holds f[x_{j-k}, ..., x_j] as k
	// grows; after pass k, dd[j] for j ≥ k is the order-k difference.
	dd := make([]linalg.Rat, len(fit))
	for i, s := range fit {
		dd[i] = s.V
	}
	for k := 1; k < len(fit); k++ {
		for j := len(fit) - 1; j >= k; j-- {
			num := dd[j].Sub(dd[j-1])
			den := linalg.RatInt(fit[j].N - fit[j-k].N)
			dd[j] = num.Div(den)
		}
	}

	// Expand the Newton form Σ_k dd[k] · Π_{m<k} (x − x_m) into the power
	// basis.
	coef := make([]linalg.Rat, deg+1)
	basis := make([]linalg.Rat, 1, deg+1) // Π so far; starts as the constant 1
	basis[0] = linalg.RatInt(1)
	for k := 0; k <= deg; k++ {
		if !dd[k].IsZero() {
			for d, b := range basis {
				coef[d] = coef[d].Add(dd[k].Mul(b))
			}
		}
		if k < deg {
			// basis ← basis · (x − x_k)
			next := make([]linalg.Rat, len(basis)+1)
			negx := linalg.RatInt(-fit[k].N)
			for d, b := range basis {
				next[d] = next[d].Add(b.Mul(negx))
				next[d+1] = next[d+1].Add(b)
			}
			basis = next
		}
	}

	// Verification: the holdout samples must lie on the fitted polynomial
	// exactly, otherwise the data was not polynomial of this degree.
	evalAt := func(n int64) linalg.Rat {
		v := linalg.RatInt(0)
		x := linalg.RatInt(n)
		for d := len(coef) - 1; d >= 0; d-- {
			v = v.Mul(x).Add(coef[d])
		}
		return v
	}
	for _, s := range ss[deg+1:] {
		if got := evalAt(s.N); got.Cmp(s.V) != 0 {
			return nil, fmt.Errorf("qpoly: degree-%d fit fails verification at n=%d: fitted %s, observed %s",
				deg, s.N, got, s.V)
		}
	}
	return coef, nil
}

// Fit recovers a quasi-polynomial of period mod and per-residue degree
// ≤ deg from samples: the samples are grouped by N mod mod, each residue
// class is fitted independently with FitPoly (so each class needs at
// least deg+1 samples; extras verify), and the rows assemble into one
// QPoly. Every residue class must be sampled.
func Fit(period int64, deg int, samples []Sample) (QPoly, error) {
	if period < 1 {
		return QPoly{}, fmt.Errorf("qpoly: period must be ≥ 1, got %d", period)
	}
	byRes := make(map[int64][]Sample)
	for _, s := range samples {
		byRes[mod(s.N, period)] = append(byRes[mod(s.N, period)], s)
	}
	rows := make([][]linalg.Rat, period)
	for r := int64(0); r < period; r++ {
		ss, ok := byRes[r]
		if !ok {
			return QPoly{}, fmt.Errorf("qpoly: no samples for residue %d (mod %d)", r, period)
		}
		row, err := FitPoly(deg, ss)
		if err != nil {
			return QPoly{}, fmt.Errorf("residue %d (mod %d): %w", r, period, err)
		}
		rows[r] = row
	}
	return (QPoly{period: period, coef: rows}).Canon(), nil
}
