package advisor

import (
	"math"
	"strconv"
	"sync"
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/ir"
	"cachemodel/internal/kernels"
	"cachemodel/internal/layout"
	"cachemodel/internal/sampling"
)

func plan() sampling.Plan { return sampling.Plan{C: 0.95, W: 0.05} }

// conflictProgram builds the classic pathology: A and B exactly one cache
// size apart, streamed together through a direct-mapped cache.
func conflictProgram(n int64) *ir.Program {
	b := ir.NewSub("CONFLICT")
	A := b.Real8("A", n)
	B := b.Real8("B", n)
	i := ir.Var("I")
	b.Do("I", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(A, i), ir.R(B, i)).
		End()
	p := ir.NewProgram("CONFLICT")
	p.Add(b.Build())
	return p
}

// TestDiagnoseCrossInterference: the diagnosis must name B as the top
// interferer evicting A's lines (and vice versa) in the conflict program.
func TestDiagnoseCrossInterference(t *testing.T) {
	np, err := prepare(conflictProgram(4096), layoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := cache.Default32K(1)
	d, err := Diagnose(np, cfg, cme.Options{}, plan())
	if err != nil {
		t.Fatal(err)
	}
	if d.MissRatio() < 90 {
		t.Fatalf("diagnosed ratio %.2f%%, want ~100 (full conflict)", d.MissRatio())
	}
	if len(d.Matrix) == 0 {
		t.Fatal("empty interference matrix")
	}
	top := d.Matrix[0]
	if top.Victim.Name == top.Interferer.Name {
		t.Errorf("top interference is self (%s<-%s), want cross", top.Victim.Name, top.Interferer.Name)
	}
	if d.SelfInterference > 0.2 {
		t.Errorf("self-interference fraction %.2f, want ~0 for a pure cross conflict", d.SelfInterference)
	}
}

// TestDiagnoseSelfInterference: a single array far larger than the cache,
// re-swept repeatedly, interferes only with itself.
func TestDiagnoseSelfInterference(t *testing.T) {
	b := ir.NewSub("SELF")
	A := b.Real8("A", 512)
	i := ir.Var("I")
	b.Do("T", ir.Con(1), ir.Con(6)).
		Do("I", ir.Con(1), ir.Con(512)).
		Assign("S1", nil, ir.R(A, i)).
		End().End()
	p := ir.NewProgram("SELF")
	p.Add(b.Build())
	np, err := prepare(p, layoutOptions())
	if err != nil {
		t.Fatal(err)
	}
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 1}
	d, err := Diagnose(np, cfg, cme.Options{}, plan())
	if err != nil {
		t.Fatal(err)
	}
	if d.Repl == 0 {
		t.Fatal("expected replacement misses (4 KB array through 1 KB cache)")
	}
	if d.SelfInterference < 0.95 {
		t.Errorf("self-interference %.2f, want ~1", d.SelfInterference)
	}
}

// TestSearchPaddingFindsFix: the padding search must rank a
// conflict-removing pad strictly above pad 0.
func TestSearchPaddingFindsFix(t *testing.T) {
	cfg := cache.Default32K(1)
	choices, err := SearchPadding(func() *ir.Program { return conflictProgram(4096) },
		"B", []int64{0, 32, 64}, cfg, cme.Options{}, plan())
	if err != nil {
		t.Fatal(err)
	}
	if choices[0].Label == "pad=0" {
		t.Errorf("pad=0 ranked best: %+v", choices)
	}
	if choices[len(choices)-1].Label != "pad=0" {
		t.Errorf("pad=0 not ranked worst: %+v", choices)
	}
	if choices[0].MissRatio > 35 || choices[len(choices)-1].MissRatio < 90 {
		t.Errorf("implausible ratios: %+v", choices)
	}
}

// TestSearchParameterRanksTiles: the tile search must prefer a cache-
// fitting MMT block over the unblocked extreme, and the ranking must
// agree with what Table 7's simulator would say (small blocks win for an
// 8 KB cache at N=48).
func TestSearchParameterRanksTiles(t *testing.T) {
	cfg := cache.Config{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 2}
	choices, err := SearchParameter(func(b int64) *ir.Program { return kernels.MMT(48, b, b) },
		[]int64{8, 48}, cfg, cme.Options{}, plan())
	if err != nil {
		t.Fatal(err)
	}
	if choices[0].Label != "8" {
		t.Errorf("expected block 8 to win: %+v", choices)
	}
}

// TestSearchParameterClosedFormPrunes: a size-parameterised affine family
// must be priced by the scaling tier — dominated candidates keep their
// closed-form ratio and are never instantiated at their own size, and the
// closed-form ratios are exactly the per-size analytical ones.
func TestSearchParameterClosedFormPrunes(t *testing.T) {
	cfg := cache.Config{SizeBytes: 512, LineBytes: 64, Assoc: 1}
	var mu sync.Mutex
	builtAt := map[int64]int{}
	build := func(n int64) *ir.Program {
		mu.Lock()
		builtAt[n]++
		mu.Unlock()
		return conflictProgram(n)
	}
	// All above the fit-sample window, so a dominated candidate's size is
	// never instantiated at all.
	params := []int64{320, 384, 448, 512}
	choices, err := SearchParameter(build, params, cfg, cme.Options{}, plan())
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != len(params) {
		t.Fatalf("%d choices for %d params", len(choices), len(params))
	}
	closed := 0
	for _, c := range choices {
		v, err := strconv.ParseInt(c.Label, 10, 64)
		if err != nil {
			t.Fatalf("label %q", c.Label)
		}
		if !c.ClosedForm {
			continue
		}
		closed++
		if builtAt[v] != 0 {
			t.Errorf("dominated candidate %d was instantiated %d times", v, builtAt[v])
		}
		np, err := prepare(conflictProgram(v), layoutOptions())
		if err != nil {
			t.Fatal(err)
		}
		a, err := cme.New(np, cfg, cme.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := a.FindMisses().MissRatio(); math.Abs(c.MissRatio-want) > 1e-9 {
			t.Errorf("candidate %d: closed-form ratio %.6f, exact %.6f", v, c.MissRatio, want)
		}
	}
	if closed != len(params)-1 {
		t.Errorf("%d of %d candidates pruned, want all but the confirmed best", closed, len(params))
	}
}

// TestSearchParameterTileFamilyUnchanged: a family the scaling tier cannot
// lift (tile size inside min() bounds changes trip counts non-affinely)
// must silently take the per-candidate path.
func TestSearchParameterTileFamilyUnchanged(t *testing.T) {
	cfg := cache.Config{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 2}
	choices, err := SearchParameter(func(b int64) *ir.Program { return kernels.MMT(48, b, b) },
		[]int64{8, 48}, cfg, cme.Options{}, plan())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range choices {
		if c.ClosedForm {
			t.Errorf("tile candidate %s claims a closed form", c.Label)
		}
	}
}

func layoutOptions() layout.Options { return layout.Options{} }

// TestFrontier pins the pruning contract the dist coordinator builds on:
// the best max(1, keep) choices always survive, plus anything within
// marginPct (relative) of the best; the rest is dominated.
func TestFrontier(t *testing.T) {
	sorted := []Choice{
		{Label: "a", MissRatio: 10.0},
		{Label: "b", MissRatio: 10.5}, // within 10% of a
		{Label: "c", MissRatio: 12.0}, // outside 10%, inside keep=3
		{Label: "d", MissRatio: 40.0},
		{Label: "e", MissRatio: 80.0},
	}
	cases := []struct {
		name   string
		keep   int
		margin float64
		want   []string
	}{
		{"keep_floor_is_one", 0, 0, []string{"a"}},
		{"margin_extends_past_keep", 1, 10, []string{"a", "b"}},
		{"keep_overrides_margin", 3, 0, []string{"a", "b", "c"}},
		{"margin_covers_everything", 1, 1000, []string{"a", "b", "c", "d", "e"}},
		{"keep_beyond_len", 10, 0, []string{"a", "b", "c", "d", "e"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Frontier(sorted, tc.keep, tc.margin)
			if len(got) != len(tc.want) {
				t.Fatalf("kept %d choices, want %d (%v)", len(got), len(tc.want), got)
			}
			for i, w := range tc.want {
				if got[i].Label != w {
					t.Errorf("survivor[%d] = %s, want %s", i, got[i].Label, w)
				}
			}
		})
	}
	if got := Frontier(nil, 3, 10); got != nil {
		t.Errorf("Frontier(nil) = %v, want nil", got)
	}
	// The survivors are a prefix: once a choice falls off the frontier,
	// nothing behind it (sorted worse) can re-enter.
	gapped := []Choice{{Label: "a", MissRatio: 10}, {Label: "b", MissRatio: 50}, {Label: "c", MissRatio: 10.1}}
	if got := Frontier(gapped, 1, 5); len(got) != 1 || got[0].Label != "a" {
		t.Errorf("frontier is not a prefix: %v", got)
	}
}
