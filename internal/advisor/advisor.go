// Package advisor turns the analytical model into optimisation guidance —
// the use the paper motivates ("our method can be used to guide compiler
// locality optimisations") and its authors' follow-up work (Ghosh et al.,
// "Automated cache optimizations using CME driven diagnosis") develops.
//
// Two facilities are provided:
//
//   - Diagnose samples each reference's iteration space and attributes
//     every replacement miss to the arrays whose lines supplied the
//     evicting set contentions, yielding an interference matrix a
//     compiler (or human) can act on;
//   - SearchPadding and SearchParameter drive the analytical model over a
//     transformation space (inter-array pads, tile sizes, ...) and return
//     the predicted-best choice, without ever simulating.
package advisor

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/inline"
	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/poly"
	"cachemodel/internal/sampling"
)

// Interference is one cell of the interference matrix: sampled evidence
// that Interferer's lines evict Victim's data.
type Interference struct {
	Victim     *ir.Array
	Interferer *ir.Array
	// Contentions counts contending-line observations in sampled
	// replacement misses, scaled to the victim's full access count.
	Contentions float64
}

// Diagnosis summarises a sampled diagnostic pass.
type Diagnosis struct {
	Config cache.Config
	// Estimated access-weighted totals.
	Accesses float64
	Hits     float64
	Cold     float64
	Repl     float64
	// Matrix is the interference list, heaviest first.
	Matrix []Interference
	// SelfInterference is the portion of replacement misses whose
	// contentions come from the victim array itself.
	SelfInterference float64
	Elapsed          time.Duration
}

// MissRatio returns the diagnosed miss ratio in percent.
func (d *Diagnosis) MissRatio() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return 100 * (d.Cold + d.Repl) / d.Accesses
}

// Top returns the n heaviest interference pairs.
func (d *Diagnosis) Top(n int) []Interference {
	if n > len(d.Matrix) {
		n = len(d.Matrix)
	}
	return d.Matrix[:n]
}

// Diagnose runs a sampled diagnostic analysis: every reference is sampled
// per the plan, each sampled access classified with attribution, and the
// contention evidence aggregated per (victim array, interferer array).
func Diagnose(np *ir.NProgram, cfg cache.Config, opt cme.Options, plan sampling.Plan) (*Diagnosis, error) {
	return DiagnoseCtx(context.Background(), np, cfg, opt, plan, budget.Budget{})
}

// DiagnoseCtx is Diagnose under a context and a budget, with a checkpoint
// per classified sample point. Diagnosis needs pointwise attribution, so
// there is no cheaper tier to degrade to: an interrupted run returns the
// partial diagnosis (covering the references sampled so far, scaled to
// their access counts) together with ErrCanceled or ErrBudgetExceeded.
func DiagnoseCtx(ctx context.Context, np *ir.NProgram, cfg cache.Config, opt cme.Options, plan sampling.Plan, b budget.Budget) (*Diagnosis, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	a, err := cme.New(np, cfg, opt)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	m := budget.NewMeter(ctx, b)
	var p *budget.Probe
	if !m.Unlimited() {
		p = m.Probe()
		defer p.Drain()
	}
	rng := rand.New(rand.NewSource(20020211)) // the paper's venue date
	d := &Diagnosis{Config: cfg}
	cells := map[[2]*ir.Array]float64{}
	var selfHits float64
	var ierr error

	for _, r := range np.Refs {
		if ierr != nil {
			break
		}
		sp := poly.FromStmt(r.Stmt)
		vol := sp.Volume()
		if vol == 0 {
			continue
		}
		n := plan.SizeFor(vol)
		if !plan.Achievable(vol) {
			if sampling.DefaultFallback.Achievable(vol) {
				n = sampling.DefaultFallback.SizeFor(vol)
			} else {
				n = int(vol)
			}
		}
		pts := sp.Sample(rng, n)
		if len(pts) == 0 {
			continue
		}
		weight := float64(vol) / float64(len(pts)) // scale sample to population
		d.Accesses += float64(vol)
		classified := 0
		for _, idx := range pts {
			if p != nil {
				if ierr = p.Check(1, 0); ierr != nil {
					break
				}
			}
			classified++
			outcome, refs := a.ClassifyDetail(r, idx)
			switch outcome {
			case cme.Hit:
				d.Hits += weight
			case cme.ColdMiss:
				d.Cold += weight
			case cme.ReplacementMiss:
				d.Repl += weight
				for _, ri := range refs {
					cells[[2]*ir.Array{r.Array, ri.Array}] += weight / float64(len(refs))
					if ri.Array == r.Array {
						selfHits += weight / float64(len(refs))
					}
				}
			}
		}
	}
	for k, v := range cells {
		d.Matrix = append(d.Matrix, Interference{Victim: k[0], Interferer: k[1], Contentions: v})
	}
	sort.Slice(d.Matrix, func(i, j int) bool {
		if d.Matrix[i].Contentions != d.Matrix[j].Contentions {
			return d.Matrix[i].Contentions > d.Matrix[j].Contentions
		}
		return d.Matrix[i].Victim.Name < d.Matrix[j].Victim.Name
	})
	if d.Repl > 0 {
		d.SelfInterference = selfHits / d.Repl
	}
	d.Elapsed = time.Since(start)
	return d, ierr
}

// Choice is one evaluated transformation candidate.
type Choice struct {
	Label     string
	MissRatio float64 // predicted, percent
	// ClosedForm reports that the ratio came from O(1) closed-form
	// evaluation rather than an enumerating solve: the scaling tier's
	// quasi-polynomials in SearchParameterCtx (the candidate was dominated
	// under the symbolic estimate, so no per-size solve was spent on it),
	// or the geometry-parametric tier in SearchConfigs (every reference of
	// the geometry answered from a column fit).
	ClosedForm bool
}

// SearchPadding evaluates inter-array paddings analytically and returns
// the candidates sorted by predicted miss ratio (best first). build must
// return a fresh Program each call (layout mutates array bases).
func SearchPadding(build func() *ir.Program, array string, pads []int64,
	cfg cache.Config, opt cme.Options, plan sampling.Plan) ([]Choice, error) {

	return SearchPaddingCtx(context.Background(), build, array, pads, cfg, opt, plan, budget.Budget{})
}

// SearchPaddingCtx is SearchPadding under a context and a budget. The
// deadline (and the context) spans the whole search; the point and scan
// caps apply per candidate, since each candidate is an independent
// estimate. An interrupted search returns the candidates evaluated so far
// (sorted) together with the interruption error, so a caller can still
// act on the best choice seen.
//
// Unbudgeted searches ride the batch solver: the program is prepared once
// (normalise, reuse vectors, polyhedra) and every padding is a layout
// candidate of one cme.SolveBatch sweep, which keeps the worker pool
// saturated across candidates and shares all geometry-invariant state.
// Budgeted searches keep the per-candidate path, whose incremental
// degradation semantics SolveBatch deliberately does not replicate.
func SearchPaddingCtx(ctx context.Context, build func() *ir.Program, array string, pads []int64,
	cfg cache.Config, opt cme.Options, plan sampling.Plan, b budget.Budget) ([]Choice, error) {

	if b.IsZero() {
		np, err := prepare(build(), layout.Options{})
		if err != nil {
			return nil, err
		}
		p, err := cme.Prepare(np, opt)
		if err != nil {
			return nil, err
		}
		cands := make([]cme.Candidate, len(pads))
		for i, pad := range pads {
			cands[i] = cme.Candidate{
				Label:  fmt.Sprintf("pad=%d", pad),
				Config: cfg,
				Layout: &layout.Options{PadOf: map[string]int64{array: pad}},
			}
		}
		reps, err := p.SolveBatch(ctx, cands, cme.BatchOptions{Plan: &plan})
		var out []Choice
		for i, rep := range reps {
			if rep != nil && rep.CompleteRefs() == len(rep.Refs) {
				out = append(out, Choice{Label: cands[i].Label, MissRatio: rep.MissRatio()})
			}
		}
		sortChoices(out)
		return out, err
	}

	var out []Choice
	for _, pad := range pads {
		np, err := prepare(build(), layout.Options{PadOf: map[string]int64{array: pad}})
		if err != nil {
			return nil, err
		}
		rep, err := estimateCtx(ctx, np, cfg, opt, plan, b)
		if err != nil {
			sortChoices(out)
			return out, err
		}
		out = append(out, Choice{Label: fmt.Sprintf("pad=%d", pad), MissRatio: rep})
	}
	sortChoices(out)
	return out, nil
}

// SearchConfigs sweeps cache geometries against one program: the batch
// formulation of the "which cache would this code like" question. The
// program is prepared once; every geometry is one candidate of a single
// SolveBatch sweep. A nil plan solves exactly — and exact sweeps engage
// the geometry-parametric closed-form tier automatically, so a wide
// cache-size column costs a handful of anchor solves plus O(1) per
// remaining geometry (Choice.ClosedForm marks those candidates). Results
// come back sorted by predicted miss ratio, best first.
func SearchConfigs(ctx context.Context, build func() *ir.Program, cfgs []cache.Config,
	opt cme.Options, plan *sampling.Plan) ([]Choice, error) {

	np, err := prepare(build(), layout.Options{})
	if err != nil {
		return nil, err
	}
	p, err := cme.Prepare(np, opt)
	if err != nil {
		return nil, err
	}
	cands := make([]cme.Candidate, len(cfgs))
	for i, cfg := range cfgs {
		cands[i] = cme.Candidate{Label: cfg.String(), Config: cfg}
	}
	reps, err := p.SolveBatch(ctx, cands, cme.BatchOptions{Plan: plan})
	var out []Choice
	for i, rep := range reps {
		if rep != nil && rep.CompleteRefs() == len(rep.Refs) {
			out = append(out, Choice{Label: cands[i].Label, MissRatio: rep.MissRatio(),
				ClosedForm: rep.Geom.Closed()})
		}
	}
	sortChoices(out)
	return out, err
}

// SearchParameter evaluates a parameterised family of programs (tile
// sizes, loop orders, ...) and returns the candidates sorted by predicted
// miss ratio.
func SearchParameter(build func(param int64) *ir.Program, params []int64,
	cfg cache.Config, opt cme.Options, plan sampling.Plan) ([]Choice, error) {

	return SearchParameterCtx(context.Background(), build, params, cfg, opt, plan, budget.Budget{})
}

// SearchParameterCtx is SearchParameter under a context and a budget, with
// the same semantics as SearchPaddingCtx: global deadline, per-candidate
// point/scan caps, and partial (sorted) results on interruption.
//
// Unbudgeted searches try the closed-form scaling tier first: when the
// family is affine in the parameter, every candidate is priced by O(1)
// quasi-polynomial evaluation and only the non-dominated (best) candidate
// pays for a per-size solve — the ROADMAP's "prune before paying for
// exact". Families the tier cannot lift (tile sizes inside min() bounds,
// structure changes) take the per-candidate path unchanged.
func SearchParameterCtx(ctx context.Context, build func(param int64) *ir.Program, params []int64,
	cfg cache.Config, opt cme.Options, plan sampling.Plan, b budget.Budget) ([]Choice, error) {

	if b.IsZero() {
		if out, ok, err := searchParameterClosed(ctx, build, params, cfg, opt, plan); ok {
			return out, err
		}
	}
	var out []Choice
	for _, v := range params {
		np, err := prepare(build(v), layout.Options{})
		if err != nil {
			return nil, err
		}
		rep, err := estimateCtx(ctx, np, cfg, opt, plan, b)
		if err != nil {
			sortChoices(out)
			return out, err
		}
		out = append(out, Choice{Label: fmt.Sprintf("%d", v), MissRatio: rep})
	}
	sortChoices(out)
	return out, nil
}

// searchParameterClosed is the scaling-tier fast path of
// SearchParameterCtx. ok=false means the family is not liftable (or no
// candidate was covered) and the caller should run the plain search.
func searchParameterClosed(ctx context.Context, build func(param int64) *ir.Program, params []int64,
	cfg cache.Config, opt cme.Options, plan sampling.Plan) ([]Choice, bool, error) {

	s, err := cme.PrepareScaling(func(n int64) (*ir.NProgram, error) {
		return prepare(build(n), layout.Options{})
	}, cfg, opt, cme.ScalingOptions{})
	if err != nil || !s.ClosedFormEligible() {
		return nil, false, nil
	}
	// The closed form only covers sizes at or beyond the fit window, and a
	// fit costs degree+1+verify exact solves at window-sized samples. When
	// every requested parameter is smaller than that, the "fast path" would
	// cover nothing (or pay far more than the direct solves it replaces):
	// run the plain per-candidate search instead.
	maxParam := int64(0)
	for _, v := range params {
		if v > maxParam {
			maxParam = v
		}
	}
	if maxParam < s.MinClosedN() {
		return nil, false, nil
	}
	type cand struct {
		v      int64
		ratio  float64
		closed bool
	}
	cands := make([]cand, len(params))
	covered := 0
	for i, v := range params {
		cands[i] = cand{v: v}
		rep, ok, err := s.EvalClosedCtx(ctx, v)
		if err != nil || !ok {
			continue // fit failed or out of chamber: priced by a real solve below
		}
		cands[i].ratio, cands[i].closed = rep.MissRatio(), true
		covered++
	}
	if covered == 0 {
		return nil, false, nil
	}
	// The best symbolic candidate is confirmed by the standard estimator;
	// dominated candidates keep their closed-form ratio and skip the solve.
	best := -1
	for i, c := range cands {
		if c.closed && (best < 0 || c.ratio < cands[best].ratio) {
			best = i
		}
	}
	var out []Choice
	for i, c := range cands {
		label := fmt.Sprintf("%d", c.v)
		if c.closed && i != best {
			out = append(out, Choice{Label: label, MissRatio: c.ratio, ClosedForm: true})
			continue
		}
		np, err := prepare(build(c.v), layout.Options{})
		if err != nil {
			return nil, true, err
		}
		ratio, err := estimateCtx(ctx, np, cfg, opt, plan, budget.Budget{})
		if err != nil {
			sortChoices(out)
			return out, true, err
		}
		out = append(out, Choice{Label: label, MissRatio: ratio})
	}
	sortChoices(out)
	return out, true, nil
}

// Frontier selects the non-dominated prefix of a best-first choice list
// (as returned by the Search* functions): the best max(1, keep) choices
// always survive, plus every further choice whose predicted miss ratio is
// within marginPct percent (relative) of the best. Everything else is
// dominated — a cheaper-tier estimate already places it far enough behind
// the frontier that paying for an exact solve on it cannot change the
// answer. The distributed sweep coordinator uses this to prune a
// candidate grid under the sampled tier before sharding exact solves.
func Frontier(sorted []Choice, keep int, marginPct float64) []Choice {
	if len(sorted) == 0 {
		return nil
	}
	if keep < 1 {
		keep = 1
	}
	cut := sorted[0].MissRatio * (1 + marginPct/100)
	n := 0
	for i, c := range sorted {
		if i < keep || c.MissRatio <= cut {
			n = i + 1
			continue
		}
		break
	}
	return sorted[:n]
}

func sortChoices(cs []Choice) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].MissRatio < cs[j].MissRatio })
}

func prepare(p *ir.Program, lopt layout.Options) (*ir.NProgram, error) {
	flat, _, err := inline.Flatten(p, inline.Options{})
	if err != nil {
		return nil, err
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		return nil, err
	}
	if err := layout.AssignProgram(np, lopt); err != nil {
		return nil, err
	}
	return np, nil
}

func estimateCtx(ctx context.Context, np *ir.NProgram, cfg cache.Config, opt cme.Options, plan sampling.Plan, b budget.Budget) (float64, error) {
	a, err := cme.New(np, cfg, opt)
	if err != nil {
		return 0, err
	}
	rep, err := a.EstimateMissesCtx(ctx, b, plan)
	if err != nil {
		return 0, err
	}
	return rep.MissRatio(), nil
}
