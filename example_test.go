package cachemodel_test

import (
	"fmt"

	"cachemodel"
)

// Example demonstrates the full pipeline on FORTRAN source: parse,
// prepare (inline + normalise + layout), analyse, and validate against
// the exact simulator.
func Example() {
	src := `
      PROGRAM DEMO
      REAL*8 A(N), B(N)
      DO I = 1, N
        A(I) = B(I)
      ENDDO
      END
`
	p, err := cachemodel.ParseFortran(src, map[string]int64{"N": 1024})
	if err != nil {
		panic(err)
	}
	np, _, err := cachemodel.Prepare(p, cachemodel.PrepareOptions{})
	if err != nil {
		panic(err)
	}
	cfg := cachemodel.Default32K(2)
	rep, err := cachemodel.FindMisses(np, cfg, cachemodel.AnalyzeOptions{})
	if err != nil {
		panic(err)
	}
	sim := cachemodel.Simulate(np, cfg)
	fmt.Printf("analytical %.2f%% simulated %.2f%%\n", rep.MissRatio(), sim.MissRatio())
	// Output: analytical 25.00% simulated 25.00%
}

// ExampleEstimateMisses shows the sampled solver at the paper's (95%,
// 0.05) plan on a built-in kernel.
func ExampleEstimateMisses() {
	np, _, err := cachemodel.Prepare(cachemodel.KernelHydro(24, 24), cachemodel.PrepareOptions{})
	if err != nil {
		panic(err)
	}
	rep, err := cachemodel.EstimateMisses(np, cachemodel.Default32K(4),
		cachemodel.AnalyzeOptions{}, cachemodel.Plan{C: 0.95, W: 0.05})
	if err != nil {
		panic(err)
	}
	fmt.Printf("references analysed: %d\n", len(rep.Refs))
	// Output: references analysed: 46
}

// ExampleClassifyCalls reproduces the Figure 5 classification through the
// public API.
func ExampleClassifyCalls() {
	src := `
      PROGRAM MAIN
      REAL*8 A(10,10), B(20,20)
      CALL F(A, B)
      END
      SUBROUTINE F(C, T)
      REAL*8 C(10,10), T(100,4)
      DO I = 1, 5
        C(I,1) = T(I,1)
      ENDDO
      END
`
	p, err := cachemodel.ParseFortran(src, nil)
	if err != nil {
		panic(err)
	}
	st := cachemodel.ClassifyCalls(p)
	fmt.Printf("P-able %d, R-able %d, N-able %d, analysable calls %d/%d\n",
		st.PAble, st.RAble, st.NAble, st.Analysable(), st.Calls)
	// Output: P-able 1, R-able 1, N-able 0, analysable calls 1/1
}
