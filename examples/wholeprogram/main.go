// Wholeprogram: the paper's headline workflow — analyse complete programs
// with subroutines and call statements. Swim's parameterless CALC1/2/3
// calls and Applu's 16-subroutine SSOR solver are abstractly inlined,
// analysed with EstimateMisses across three associativities, validated
// against the exact simulator, and the hottest references are reported
// (the information a compiler would act on).
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"cachemodel"
)

func main() {
	progs := []*cachemodel.Program{
		cachemodel.ProgramSwim(32, 2),
		cachemodel.ProgramApplu(8, 1),
	}
	plan := cachemodel.Plan{C: 0.95, W: 0.05}

	for _, p := range progs {
		stats := cachemodel.ClassifyCalls(p)
		np, inl, err := cachemodel.Prepare(p, cachemodel.PrepareOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s: %d calls, %d inlined, actuals P/R/N = %d/%d/%d, %d references after inlining\n",
			p.Name, stats.Calls, inl.Inlined, inl.PAble, inl.RAble, inl.NAble, len(np.Refs))

		for _, assoc := range []int{1, 2, 4} {
			cfg := cachemodel.Config{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: assoc}
			t0 := time.Now()
			sim := cachemodel.Simulate(np, cfg)
			simT := time.Since(t0)
			rep, err := cachemodel.EstimateMisses(np, cfg, cachemodel.AnalyzeOptions{}, plan)
			if err != nil {
				log.Fatal(err)
			}
			speedup := float64(simT) / float64(rep.Elapsed)
			fmt.Printf("  %-6v est %6.2f%%  sim %6.2f%%  |Δ| %.2f  est %v, sim %v (%.1fx)\n",
				cfg, rep.MissRatio(), sim.MissRatio(),
				abs(rep.MissRatio()-sim.MissRatio()), rep.Elapsed.Round(time.Millisecond),
				simT.Round(time.Millisecond), speedup)

			if assoc == 2 {
				// Hottest references by predicted miss volume.
				refs := append([]*cachemodel.RefReport(nil), rep.Refs...)
				sort.Slice(refs, func(i, j int) bool {
					return float64(refs[i].Volume)*refs[i].MissRatio() > float64(refs[j].Volume)*refs[j].MissRatio()
				})
				fmt.Printf("  hottest references (2-way):\n")
				for i, rr := range refs {
					if i == 5 {
						break
					}
					fmt.Printf("    %-24s |RIS| %8d  miss %6.2f%%  (%.0f misses predicted)\n",
						rr.Ref.ID, rr.Volume, 100*rr.MissRatio(), float64(rr.Volume)*rr.MissRatio())
				}
			}
		}
		fmt.Println()
	}
	if speedupDemo != nil {
		speedupDemo()
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func init() { speedupDemo = runSpeedupDemo }

// speedupDemo is run at the end of main (kept separable for -short use).
var speedupDemo func()

// runSpeedupDemo shows the asymmetry the paper's Table 6 reports (seconds
// of analysis vs hours of simulation): simulation cost grows with the
// access count, while EstimateMisses analyses a fixed-size sample per
// reference, so increasing the outer iteration count leaves the analysis
// time flat.
func runSpeedupDemo() {
	fmt.Println("=== speedup at scale: Tomcatv, growing time steps, 32KB 2-way")
	fmt.Println("    (the paper runs 750 steps at N=257: 3750s simulated vs 0.4s analysed)")
	cfg := cachemodel.Default32K(2)
	plan := cachemodel.Plan{C: 0.95, W: 0.05}
	for _, iters := range []int64{4, 32, 128} {
		np, _, err := cachemodel.Prepare(cachemodel.ProgramTomcatv(100, iters), cachemodel.PrepareOptions{})
		if err != nil {
			log.Fatal(err)
		}
		t0 := time.Now()
		sim := cachemodel.Simulate(np, cfg)
		simT := time.Since(t0)
		rep, err := cachemodel.EstimateMisses(np, cfg, cachemodel.AnalyzeOptions{}, plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  iters %3d: est %6.2f%% in %8v   sim %6.2f%% in %8v   speedup %5.1fx\n",
			iters, rep.MissRatio(), rep.Elapsed.Round(time.Millisecond),
			sim.MissRatio(), simT.Round(time.Millisecond),
			float64(simT)/float64(rep.Elapsed))
	}
}
