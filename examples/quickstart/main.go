// Quickstart: build a small FORTRAN-like program two ways (the Go builder
// and FORTRAN source text), predict its cache behaviour analytically, and
// validate the prediction against the exact LRU simulator.
package main

import (
	"fmt"
	"log"

	"cachemodel"
)

const fortranSrc = `
      PROGRAM DEMO
      REAL*8 A(N), B(N)
      DO I = 2, N - 1
        A(I) = B(I-1) + B(I) + B(I+1)
      ENDDO
      DO I = 1, N
        B(I) = A(I)
      ENDDO
      END
`

func main() {
	const n = 20000

	// --- Way 1: parse FORTRAN source.
	parsed, err := cachemodel.ParseFortran(fortranSrc, map[string]int64{"N": n})
	if err != nil {
		log.Fatal(err)
	}

	// --- Way 2: the Go builder produces the identical program.
	b := cachemodel.NewSub("DEMO")
	A := b.Real8("A", n)
	B := b.Real8("B", n)
	i := cachemodel.Var("I")
	b.Do("I", cachemodel.Con(2), cachemodel.Con(n-1)).
		Assign("S1", cachemodel.R(A, i),
			cachemodel.R(B, i.PlusConst(-1)), cachemodel.R(B, i), cachemodel.R(B, i.PlusConst(1))).
		End().
		Do("I", cachemodel.Con(1), cachemodel.Con(n)).
		Assign("S2", cachemodel.R(B, i), cachemodel.R(A, i)).
		End()
	built := cachemodel.NewProgram("DEMO")
	built.Add(b.Build())

	for _, prog := range []*cachemodel.Program{parsed, built} {
		np, _, err := cachemodel.Prepare(prog, cachemodel.PrepareOptions{})
		if err != nil {
			log.Fatal(err)
		}
		cfg := cachemodel.Default32K(2) // 32 KB, 32 B lines, 2-way LRU

		// Analytical prediction: EstimateMisses at the paper's (95%, 0.05).
		est, err := cachemodel.EstimateMisses(np, cfg,
			cachemodel.AnalyzeOptions{}, cachemodel.Plan{C: 0.95, W: 0.05})
		if err != nil {
			log.Fatal(err)
		}

		// Ground truth: the exact simulator.
		sim := cachemodel.Simulate(np, cfg)

		fmt.Printf("%-8s cache %v\n", prog.Name, cfg)
		fmt.Printf("  analytical miss ratio: %6.2f%%  (%.0f misses predicted, %s)\n",
			est.MissRatio(), est.EstimatedMisses(), est.Elapsed)
		fmt.Printf("  simulated  miss ratio: %6.2f%%  (%d misses over %d accesses)\n",
			sim.MissRatio(), sim.Misses, sim.Accesses)
		fmt.Printf("  absolute error: %.2f percentage points\n\n",
			abs(est.MissRatio()-sim.MissRatio()))
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
