// Padding: use the analytical model to choose inter-array padding — the
// other compiler transformation the paper motivates. Two arrays streamed
// together land exactly one cache size apart, so every access of a
// direct-mapped cache conflicts; the model sees this from the replacement
// equations, and a padding sweep finds the cheapest displacement that
// removes the conflicts. The simulator confirms the choice.
package main

import (
	"fmt"
	"log"

	"cachemodel"
)

func buildStream(n int64) *cachemodel.Program {
	b := cachemodel.NewSub("STREAM")
	A := b.Real8("A", n)
	B := b.Real8("B", n)
	i := cachemodel.Var("I")
	b.Do("I", cachemodel.Con(1), cachemodel.Con(n)).
		Assign("S1", cachemodel.R(A, i), cachemodel.R(B, i)).
		End()
	p := cachemodel.NewProgram("STREAM")
	p.Add(b.Build())
	return p
}

func main() {
	cfg := cachemodel.Default32K(1) // direct-mapped: maximally conflict-prone
	const n = 4096                  // 32 KB per array: B starts one cache size after A
	plan := cachemodel.Plan{C: 0.95, W: 0.05}

	// Layout places arrays in first-use order (B is read before A is
	// written), so padding after B displaces A.
	fmt.Printf("A(I) = B(I) streaming, N=%d, cache %v\n", n, cfg)
	fmt.Printf("%8s %12s %12s\n", "pad", "pred %MR", "sim %MR")

	bestPad, bestMR := int64(-1), 101.0
	for _, pad := range []int64{0, 8, 16, 32, 64, 128, 256} {
		p := buildStream(n)
		np, _, err := cachemodel.Prepare(p, cachemodel.PrepareOptions{
			Layout: cachemodel.LayoutOptions{PadOf: map[string]int64{"B": pad}},
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := cachemodel.EstimateMisses(np, cfg, cachemodel.AnalyzeOptions{}, plan)
		if err != nil {
			log.Fatal(err)
		}
		sim := cachemodel.Simulate(np, cfg)
		fmt.Printf("%8d %12.2f %12.2f\n", pad, rep.MissRatio(), sim.MissRatio())
		if rep.MissRatio() < bestMR {
			bestMR, bestPad = rep.MissRatio(), pad
		}
	}
	fmt.Printf("\nmodel picks pad = %d bytes (predicted %.2f%%):\n", bestPad, bestMR)
	fmt.Println("with pad 0, A(I) and B(I) map to the same set every iteration;")
	fmt.Println("one line of padding displaces the mapping and restores the 25%/spatial-reuse ratio.")
}
