// Diagnosis: go beyond a single miss ratio — attribute predicted misses
// to the array pairs that cause them (the CME-driven-diagnosis direction
// of the paper's authors' follow-up work), then let the model search for
// the transformation that fixes the dominant interference, and verify the
// fix in the simulator.
package main

import (
	"fmt"
	"log"

	"cachemodel"
)

// build constructs a three-array stencil whose layouts collide: X and its
// coefficient table C end up one cache size apart, so a direct-mapped
// cache thrashes between them.
func build() *cachemodel.Program {
	const n = 4096
	b := cachemodel.NewSub("COLLIDE")
	X := b.Real8("X", n)
	Y := b.Real8("Y", n) // innocent bystander between the combatants
	C := b.Real8("C", n)
	i := cachemodel.Var("I")
	b.Do("T", cachemodel.Con(1), cachemodel.Con(2)).
		Do("I", cachemodel.Con(2), cachemodel.Con(n-1)).
		Assign("S1", cachemodel.R(Y, i),
			cachemodel.R(X, i.PlusConst(-1)), cachemodel.R(X, i), cachemodel.R(X, i.PlusConst(1)),
			cachemodel.R(C, i)).
		End().End()
	p := cachemodel.NewProgram("COLLIDE")
	p.Add(b.Build())
	return p
}

func main() {
	cfg := cachemodel.Config{SizeBytes: 32 * 1024, LineBytes: 32, Assoc: 1}
	plan := cachemodel.Plan{C: 0.95, W: 0.05}

	prepareWith := func(pads map[string]int64) *cachemodel.NProgram {
		np, _, err := cachemodel.Prepare(build(), cachemodel.PrepareOptions{
			Layout: cachemodel.LayoutOptions{PadOf: pads},
		})
		if err != nil {
			log.Fatal(err)
		}
		return np
	}

	pads := map[string]int64{}
	baseline := cachemodel.Simulate(prepareWith(nil), cfg).MissRatio()

	// The automated loop: diagnose → pick the padding the model predicts
	// best → re-diagnose, until the interference matrix runs dry.
	for round := 1; round <= 3; round++ {
		np := prepareWith(pads)
		d, err := cachemodel.Diagnose(np, cfg, cachemodel.AnalyzeOptions{}, plan)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("round %d: predicted miss ratio %.2f%% (cold %.0f, replacement %.0f)\n",
			round, d.MissRatio(), d.Cold, d.Repl)
		for _, cell := range d.Top(3) {
			fmt.Printf("  %-4s <- %-4s %12.0f\n", cell.Victim.Name, cell.Interferer.Name, cell.Contentions)
		}
		if d.Repl < d.Accesses/50 {
			fmt.Println("  replacement misses negligible; stopping")
			break
		}
		// Candidate fix points: every array implicated in the top pairs.
		seen := map[string]bool{}
		var candidates []string
		for _, cell := range d.Top(3) {
			for _, name := range []string{cell.Victim.Name, cell.Interferer.Name} {
				if !seen[name] {
					seen[name] = true
					candidates = append(candidates, name)
				}
			}
		}
		bestArray, bestPad, bestMR := "", int64(0), d.MissRatio()
		for _, name := range candidates {
			for _, pad := range []int64{32, 64, 128} {
				trial := map[string]int64{}
				for k, v := range pads {
					trial[k] = v
				}
				trial[name] += pad
				rep, err := cachemodel.EstimateMisses(prepareWith(trial), cfg,
					cachemodel.AnalyzeOptions{}, plan)
				if err != nil {
					log.Fatal(err)
				}
				if rep.MissRatio() < bestMR {
					bestArray, bestPad, bestMR = name, pad, rep.MissRatio()
				}
			}
		}
		if bestArray == "" {
			fmt.Println("  no padding improves the prediction; stopping")
			break
		}
		pads[bestArray] += bestPad
		fmt.Printf("  -> pad %d after %s (predicted %.2f%%)\n\n", bestPad, bestArray, bestMR)
	}

	after := cachemodel.Simulate(prepareWith(pads), cfg).MissRatio()
	fmt.Printf("\nfinal layout %v\n", pads)
	fmt.Printf("simulator confirms: %.2f%% -> %.2f%%\n", baseline, after)
}
