// Tiling: use the analytical model to choose a tile size — the use case
// the paper puts first ("our method can be used to guide compiler
// locality optimisations"). The program is the paper's own MMT kernel
// (blocked A·Bᵀ); we sweep the block sizes BJ × BK and rank them by the
// predicted miss ratio, then check the chosen block against the exact
// simulator. No simulation is needed during the search itself — that is
// the point.
package main

import (
	"fmt"
	"log"
	"sort"

	"cachemodel"
)

type candidate struct {
	bj, bk    int64
	predicted float64
}

func main() {
	const n = 48
	cfg := cachemodel.Config{SizeBytes: 8 * 1024, LineBytes: 32, Assoc: 2}
	plan := cachemodel.Plan{C: 0.95, W: 0.05}

	blocks := []int64{4, 8, 12, 16, 24, 48}
	var cands []candidate
	for _, bj := range blocks {
		for _, bk := range blocks {
			if n%bj != 0 || n%bk != 0 {
				continue
			}
			np, _, err := cachemodel.Prepare(cachemodel.KernelMMT(n, bj, bk), cachemodel.PrepareOptions{})
			if err != nil {
				log.Fatal(err)
			}
			rep, err := cachemodel.EstimateMisses(np, cfg, cachemodel.AnalyzeOptions{}, plan)
			if err != nil {
				log.Fatal(err)
			}
			cands = append(cands, candidate{bj, bk, rep.MissRatio()})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].predicted < cands[j].predicted })

	fmt.Printf("MMT N=%d on %v — predicted miss ratios by block size:\n", n, cfg)
	fmt.Printf("%6s %6s %12s\n", "BJ", "BK", "pred %MR")
	for _, c := range cands {
		fmt.Printf("%6d %6d %12.2f\n", c.bj, c.bk, c.predicted)
	}

	best, worst := cands[0], cands[len(cands)-1]
	fmt.Printf("\nmodel picks BJ=%d BK=%d; validating against the simulator:\n", best.bj, best.bk)
	for _, c := range []candidate{best, worst} {
		np, _, err := cachemodel.Prepare(cachemodel.KernelMMT(n, c.bj, c.bk), cachemodel.PrepareOptions{})
		if err != nil {
			log.Fatal(err)
		}
		sim := cachemodel.Simulate(np, cfg)
		fmt.Printf("  BJ=%2d BK=%2d: predicted %6.2f%%  simulated %6.2f%%\n",
			c.bj, c.bk, c.predicted, sim.MissRatio())
	}
}
