module cachemodel

go 1.22
