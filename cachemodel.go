// Package cachemodel is a from-scratch implementation of the analytical
// whole-program cache behaviour analysis of Vera & Xue, "Let's Study
// Whole-Program Cache Behaviour Analytically" (HPCA 2002 / UNSW-CSE-TR0109).
//
// Given a FORTRAN-like regular program — subroutines, call statements, IF
// statements, arbitrarily nested affine loops — the library predicts its
// data-cache miss ratio on a k-way set-associative LRU cache without
// simulating it, by:
//
//  1. abstractly inlining all analysable calls (§3.6),
//  2. normalising the loop structure so every statement sits in an
//     n-dimensional nest (§3.1),
//  3. deriving temporal and spatial reuse vectors across multiple nests
//     (§3.4–3.5, the paper's central contribution),
//  4. solving cold and replacement miss equations per access (§4), either
//     exhaustively (FindMisses) or over a statistically chosen sample
//     (EstimateMisses).
//
// An exact LRU cache simulator (the paper's validation baseline) and the
// probabilistic estimator of Fraguela et al. (the Table 7 baseline) are
// included.
//
// # Quick start
//
//	b := cachemodel.NewSub("MAIN")
//	A := b.Real8("A", 1000)
//	b.Do("I", cachemodel.Con(2), cachemodel.Con(999)).
//	    Assign("S1", cachemodel.R(A, cachemodel.Var("I")),
//	        cachemodel.R(A, cachemodel.Var("I").PlusConst(-1))).
//	    End()
//	p := cachemodel.NewProgram("demo")
//	p.Add(b.Build())
//	np, _, err := cachemodel.Prepare(p, cachemodel.PrepareOptions{})
//	if err != nil { ... }
//	rep, err := cachemodel.EstimateMisses(np, cachemodel.Default32K(2),
//	    cachemodel.AnalyzeOptions{}, cachemodel.Plan{C: 0.95, W: 0.05})
//	fmt.Printf("miss ratio %.2f%%\n", rep.MissRatio())
package cachemodel

import (
	"cachemodel/internal/advisor"
	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/fparse"
	"cachemodel/internal/inline"
	"cachemodel/internal/ir"
	"cachemodel/internal/kernels"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/prob"
	"cachemodel/internal/reuse"
	"cachemodel/internal/sampling"
	"cachemodel/internal/trace"
)

// Program-model types (see internal/ir).
type (
	// Program is a whole program: subroutines plus a designated entry.
	Program = ir.Program
	// Subroutine is one subroutine: formals, locals and a body.
	Subroutine = ir.Subroutine
	// SubBuilder builds subroutines fluently.
	SubBuilder = ir.SubBuilder
	// Array is a column-major FORTRAN array.
	Array = ir.Array
	// Expr is a linear expression over named loop variables.
	Expr = ir.Expr
	// Cond is an affine IF condition.
	Cond = ir.Cond
	// Ref is an array reference with affine subscripts.
	Ref = ir.Ref
	// Arg is an actual parameter at a call site.
	Arg = ir.Arg
	// NProgram is the normalised program all analyses run on.
	NProgram = ir.NProgram
	// NRef is a reference of the normalised program.
	NRef = ir.NRef
)

// Builder helpers re-exported from the program model.
var (
	// NewProgram returns an empty program.
	NewProgram = ir.NewProgram
	// NewSub starts building a subroutine.
	NewSub = ir.NewSub
	// NewArray declares an array without laying it out.
	NewArray = ir.NewArray
	// Con builds a constant expression.
	Con = ir.Con
	// Var builds a loop-variable expression.
	Var = ir.Var
	// Term builds coeff·var.
	Term = ir.Term
	// R builds an array reference.
	R = ir.R
	// ArgVar passes a whole variable as an actual parameter.
	ArgVar = ir.ArgVar
	// ArgElem passes a subscripted element as an actual parameter.
	ArgElem = ir.ArgElem
)

// Comparison operators for IF conditions.
const (
	EQ = ir.EQ
	LE = ir.LE
	LT = ir.LT
	GE = ir.GE
	GT = ir.GT
)

// Cache and analysis types.
type (
	// Config describes a k-way set-associative LRU cache (§2).
	Config = cache.Config
	// Simulator is the exact cache simulator.
	Simulator = cache.Simulator
	// SimResult holds per-reference simulation counts.
	SimResult = trace.SimResult
	// AnalyzeOptions tunes the miss-equation solvers.
	AnalyzeOptions = cme.Options
	// ReuseOptions tunes reuse-vector generation.
	ReuseOptions = reuse.Options
	// Report is the output of FindMisses / EstimateMisses.
	Report = cme.Report
	// RefReport is the per-reference analysis result.
	RefReport = cme.RefReport
	// Plan is a sampling request: confidence and interval half-width.
	Plan = sampling.Plan
	// InlineOptions tunes abstract inlining.
	InlineOptions = inline.Options
	// InlineStats reports the Table 2 classification counters.
	InlineStats = inline.Stats
	// LayoutOptions tunes the data layout (padding, alignment).
	LayoutOptions = layout.Options
	// ProbOptions tunes the probabilistic baseline estimator.
	ProbOptions = prob.Options
	// ProbReport is the probabilistic baseline's output.
	ProbReport = prob.Report
)

// Default32K returns the paper's default cache: 32 KB, 32-byte lines.
func Default32K(assoc int) Config { return cache.Default32K(assoc) }

// NewSimulator returns an empty exact LRU simulator.
func NewSimulator(cfg Config) *Simulator { return cache.NewSimulator(cfg) }

// PrepareOptions bundles the front-end options of Prepare.
type PrepareOptions struct {
	Inline InlineOptions
	Layout LayoutOptions
}

// Prepare runs the paper's front end on a whole program: abstract inlining
// of every analysable call, loop-nest normalisation and data layout. The
// returned normalised program is ready for analysis and simulation.
func Prepare(p *Program, opt PrepareOptions) (*NProgram, *InlineStats, error) {
	flat, stats, err := inline.Flatten(p, opt.Inline)
	if err != nil {
		return nil, nil, err
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		return nil, nil, err
	}
	if err := layout.AssignProgram(np, opt.Layout); err != nil {
		return nil, nil, err
	}
	np.Name = p.Name
	return np, stats, nil
}

// ClassifyCalls applies the Table 2 classification to every call of the
// program without inlining.
func ClassifyCalls(p *Program) InlineStats { return inline.ClassifyProgram(p) }

// NewAnalyzer builds the reuse vectors and iteration spaces of a prepared
// program for the given cache.
func NewAnalyzer(np *NProgram, cfg Config, opt AnalyzeOptions) (*cme.Analyzer, error) {
	return cme.New(np, cfg, opt)
}

// FindMisses analyses every iteration point of every reference (exact,
// Fig. 6 left).
func FindMisses(np *NProgram, cfg Config, opt AnalyzeOptions) (*Report, error) {
	a, err := cme.New(np, cfg, opt)
	if err != nil {
		return nil, err
	}
	return a.FindMisses(), nil
}

// EstimateMisses analyses a statistically chosen sample of each
// reference's iteration space (Fig. 6 right).
func EstimateMisses(np *NProgram, cfg Config, opt AnalyzeOptions, plan Plan) (*Report, error) {
	a, err := cme.New(np, cfg, opt)
	if err != nil {
		return nil, err
	}
	return a.EstimateMisses(plan)
}

// Simulate replays the program through the exact LRU simulator.
func Simulate(np *NProgram, cfg Config) *SimResult { return trace.Simulate(np, cfg) }

// EstimateProbabilistic runs the Fraguela-style probabilistic baseline
// (Table 7).
func EstimateProbabilistic(np *NProgram, cfg Config, opt ProbOptions) (*ProbReport, error) {
	return prob.Estimate(np, cfg, opt)
}

// Diagnosis types (CME-driven diagnosis, internal/advisor).
type (
	// Diagnosis attributes replacement misses to interfering arrays.
	Diagnosis = advisor.Diagnosis
	// Interference is one victim/interferer cell of the matrix.
	Interference = advisor.Interference
	// Choice is one evaluated transformation candidate.
	Choice = advisor.Choice
)

// Diagnose samples the program and attributes every replacement miss to
// the arrays that supplied the evicting contentions.
func Diagnose(np *NProgram, cfg Config, opt AnalyzeOptions, plan Plan) (*Diagnosis, error) {
	return advisor.Diagnose(np, cfg, opt, plan)
}

// SearchPadding ranks inter-array paddings by predicted miss ratio.
func SearchPadding(build func() *Program, array string, pads []int64, cfg Config, opt AnalyzeOptions, plan Plan) ([]Choice, error) {
	return advisor.SearchPadding(build, array, pads, cfg, opt, plan)
}

// SearchParameter ranks a parameterised program family (tile sizes, loop
// orders, ...) by predicted miss ratio.
func SearchParameter(build func(param int64) *Program, params []int64, cfg Config, opt AnalyzeOptions, plan Plan) ([]Choice, error) {
	return advisor.SearchParameter(build, params, cfg, opt, plan)
}

// ParseFortran parses FORTRAN-subset source (the paper's program model)
// into a Program. consts supplies compile-time values for named sizes,
// the way the paper fixes READ-initialised variables from the reference
// input.
func ParseFortran(src string, consts map[string]int64) (*Program, error) {
	return fparse.Parse(src, consts)
}

// ParseOptions tunes ParseFortranOptions.
type ParseOptions = fparse.Options

// ParseFortranOptions is ParseFortran with IF-GOTO loop conversion: the
// paper converts Swim's and Tomcatv's outer IF-GOTO iteration into DO
// statements with trip counts fixed from the reference input
// (Options.GotoTrips).
func ParseFortranOptions(src string, opt ParseOptions) (*Program, error) {
	return fparse.ParseOptions(src, opt)
}

// Built-in workloads: the paper's kernels (Fig. 8) and whole-program
// models (Table 5).
var (
	// KernelHydro is Livermore kernel 18 (JN = KN sizes are separate).
	KernelHydro = kernels.Hydro
	// KernelMGRID is the 3-D interpolation nest of MGRID.
	KernelMGRID = kernels.MGRID
	// KernelMMT is the blocked A·Bᵀ multiply with a transposed copy block.
	KernelMMT = kernels.MMT
	// ProgramTomcatv is the SPECfp95 Tomcatv model.
	ProgramTomcatv = kernels.Tomcatv
	// ProgramSwim is the SPECfp95 Swim model.
	ProgramSwim = kernels.Swim
	// ProgramApplu is the SPECfp95 Applu model.
	ProgramApplu = kernels.Applu
	// ProgramVCycle is a 3-level multigrid V-cycle exercising renameable
	// and sequence-associated call arguments.
	ProgramVCycle = kernels.VCycle
)
