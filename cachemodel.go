// Package cachemodel is a from-scratch implementation of the analytical
// whole-program cache behaviour analysis of Vera & Xue, "Let's Study
// Whole-Program Cache Behaviour Analytically" (HPCA 2002 / UNSW-CSE-TR0109).
//
// Given a FORTRAN-like regular program — subroutines, call statements, IF
// statements, arbitrarily nested affine loops — the library predicts its
// data-cache miss ratio on a k-way set-associative LRU cache without
// simulating it, by:
//
//  1. abstractly inlining all analysable calls (§3.6),
//  2. normalising the loop structure so every statement sits in an
//     n-dimensional nest (§3.1),
//  3. deriving temporal and spatial reuse vectors across multiple nests
//     (§3.4–3.5, the paper's central contribution),
//  4. solving cold and replacement miss equations per access (§4), either
//     exhaustively (FindMisses) or over a statistically chosen sample
//     (EstimateMisses).
//
// An exact LRU cache simulator (the paper's validation baseline) and the
// probabilistic estimator of Fraguela et al. (the Table 7 baseline) are
// included.
//
// # Quick start
//
//	b := cachemodel.NewSub("MAIN")
//	A := b.Real8("A", 1000)
//	b.Do("I", cachemodel.Con(2), cachemodel.Con(999)).
//	    Assign("S1", cachemodel.R(A, cachemodel.Var("I")),
//	        cachemodel.R(A, cachemodel.Var("I").PlusConst(-1))).
//	    End()
//	p := cachemodel.NewProgram("demo")
//	p.Add(b.Build())
//	np, _, err := cachemodel.Prepare(p, cachemodel.PrepareOptions{})
//	if err != nil { ... }
//	rep, err := cachemodel.EstimateMisses(np, cachemodel.Default32K(2),
//	    cachemodel.AnalyzeOptions{}, cachemodel.Plan{C: 0.95, W: 0.05})
//	fmt.Printf("miss ratio %.2f%%\n", rep.MissRatio())
package cachemodel

import (
	"context"

	"cachemodel/internal/advisor"
	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cerr"
	"cachemodel/internal/cme"
	"cachemodel/internal/fparse"
	"cachemodel/internal/inline"
	"cachemodel/internal/ir"
	"cachemodel/internal/kernels"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/obs"
	"cachemodel/internal/prob"
	"cachemodel/internal/reuse"
	"cachemodel/internal/sampling"
	"cachemodel/internal/trace"
)

// Program-model types (see internal/ir).
type (
	// Program is a whole program: subroutines plus a designated entry.
	Program = ir.Program
	// Subroutine is one subroutine: formals, locals and a body.
	Subroutine = ir.Subroutine
	// SubBuilder builds subroutines fluently.
	SubBuilder = ir.SubBuilder
	// Array is a column-major FORTRAN array.
	Array = ir.Array
	// Expr is a linear expression over named loop variables.
	Expr = ir.Expr
	// Cond is an affine IF condition.
	Cond = ir.Cond
	// Ref is an array reference with affine subscripts.
	Ref = ir.Ref
	// Arg is an actual parameter at a call site.
	Arg = ir.Arg
	// NProgram is the normalised program all analyses run on.
	NProgram = ir.NProgram
	// NRef is a reference of the normalised program.
	NRef = ir.NRef
)

// Builder helpers re-exported from the program model.
var (
	// NewProgram returns an empty program.
	NewProgram = ir.NewProgram
	// NewSub starts building a subroutine.
	NewSub = ir.NewSub
	// NewArray declares an array without laying it out.
	NewArray = ir.NewArray
	// Con builds a constant expression.
	Con = ir.Con
	// Var builds a loop-variable expression.
	Var = ir.Var
	// Term builds coeff·var.
	Term = ir.Term
	// R builds an array reference.
	R = ir.R
	// ArgVar passes a whole variable as an actual parameter.
	ArgVar = ir.ArgVar
	// ArgElem passes a subscripted element as an actual parameter.
	ArgElem = ir.ArgElem
)

// Comparison operators for IF conditions.
const (
	EQ = ir.EQ
	LE = ir.LE
	LT = ir.LT
	GE = ir.GE
	GT = ir.GT
)

// Cache and analysis types.
type (
	// Config describes a k-way set-associative LRU cache (§2).
	Config = cache.Config
	// Simulator is the exact cache simulator.
	Simulator = cache.Simulator
	// SimResult holds per-reference simulation counts.
	SimResult = trace.SimResult
	// AnalyzeOptions tunes the miss-equation solvers.
	AnalyzeOptions = cme.Options
	// ReuseOptions tunes reuse-vector generation.
	ReuseOptions = reuse.Options
	// Report is the output of FindMisses / EstimateMisses.
	Report = cme.Report
	// RefReport is the per-reference analysis result.
	RefReport = cme.RefReport
	// Plan is a sampling request: confidence and interval half-width.
	Plan = sampling.Plan
	// InlineOptions tunes abstract inlining.
	InlineOptions = inline.Options
	// InlineStats reports the Table 2 classification counters.
	InlineStats = inline.Stats
	// LayoutOptions tunes the data layout (padding, alignment).
	LayoutOptions = layout.Options
	// ProbOptions tunes the probabilistic baseline estimator.
	ProbOptions = prob.Options
	// ProbReport is the probabilistic baseline's output.
	ProbReport = prob.Report
)

// Budget bounds an analysis: a wall-clock deadline, a cap on classified
// iteration points, and a cap on interference-scan steps (the dominant
// inner cost of the replacement equations). A zero Budget means unlimited.
// When a budget trips, the solvers degrade down the ladder
// FindMisses → EstimateMisses → probabilistic instead of failing, unless
// NoFallback is set; cancellation via the context never degrades — it
// returns the coherent partial result together with ErrCanceled.
type Budget = budget.Budget

// BudgetSpent reports the resources an analysis actually consumed.
type BudgetSpent = budget.Spent

// Tier identifies the rung of the degradation ladder that produced a
// result: TierExact (every point solved), TierSampled (statistical
// sample), TierProbabilistic (closed-form Fraguela-style estimate).
type Tier = cme.Tier

// Degradation-ladder rungs, strongest first.
const (
	TierExact         = cme.TierExact
	TierSampled       = cme.TierSampled
	TierProbabilistic = cme.TierProbabilistic
)

// Sentinel errors, matched with errors.Is. Wrapped variants carry
// position or provenance detail.
var (
	// ErrBudgetExceeded reports that a Budget limit tripped.
	ErrBudgetExceeded = cerr.ErrBudgetExceeded
	// ErrCanceled reports context cancellation (or an injected one).
	ErrCanceled = cerr.ErrCanceled
	// ErrNonAffine reports a construct outside the paper's program model.
	ErrNonAffine = cerr.ErrNonAffine
	// ErrDegenerateSystem reports an unsolvable linear system.
	ErrDegenerateSystem = cerr.ErrDegenerateSystem
)

// ParseError is the positioned error ParseFortran returns for malformed
// source.
type ParseError = fparse.ParseError

// Default32K returns the paper's default cache: 32 KB, 32-byte lines.
func Default32K(assoc int) Config { return cache.Default32K(assoc) }

// NewSimulator returns an empty exact LRU simulator.
func NewSimulator(cfg Config) *Simulator { return cache.NewSimulator(cfg) }

// PrepareOptions bundles the front-end options of Prepare.
type PrepareOptions struct {
	Inline InlineOptions
	Layout LayoutOptions
}

// Prepare runs the paper's front end on a whole program: abstract inlining
// of every analysable call, loop-nest normalisation and data layout. The
// returned normalised program is ready for analysis and simulation.
func Prepare(p *Program, opt PrepareOptions) (np *NProgram, stats *InlineStats, err error) {
	defer cerr.RecoverTo(&err)
	flat, stats, err := inline.Flatten(p, opt.Inline)
	if err != nil {
		return nil, nil, err
	}
	np, err = normalize.Normalize(flat)
	if err != nil {
		return nil, nil, err
	}
	if err := layout.AssignProgram(np, opt.Layout); err != nil {
		return nil, nil, err
	}
	np.Name = p.Name
	return np, stats, nil
}

// ClassifyCalls applies the Table 2 classification to every call of the
// program without inlining.
func ClassifyCalls(p *Program) InlineStats { return inline.ClassifyProgram(p) }

// NewAnalyzer builds the reuse vectors and iteration spaces of a prepared
// program for the given cache.
func NewAnalyzer(np *NProgram, cfg Config, opt AnalyzeOptions) (a *cme.Analyzer, err error) {
	defer cerr.RecoverTo(&err)
	return cme.New(np, cfg, opt)
}

// FindMisses analyses every iteration point of every reference (exact,
// Fig. 6 left).
func FindMisses(np *NProgram, cfg Config, opt AnalyzeOptions) (*Report, error) {
	return FindMissesCtx(context.Background(), np, cfg, opt, Budget{})
}

// FindMissesCtx is FindMisses under a context and a budget. On budget
// exhaustion the analysis degrades — unfinished references are resampled
// (TierSampled) and, if even that cannot finish, estimated in closed form
// (TierProbabilistic) — and the report records the weakest tier used, so
// a bounded call always returns a usable Report. On cancellation it
// returns the coherent partial report together with ErrCanceled.
func FindMissesCtx(ctx context.Context, np *NProgram, cfg Config, opt AnalyzeOptions, b Budget) (rep *Report, err error) {
	defer cerr.RecoverTo(&err)
	a, err := cme.New(np, cfg, opt)
	if err != nil {
		return nil, err
	}
	return a.FindMissesCtx(ctx, b)
}

// EstimateMisses analyses a statistically chosen sample of each
// reference's iteration space (Fig. 6 right).
func EstimateMisses(np *NProgram, cfg Config, opt AnalyzeOptions, plan Plan) (*Report, error) {
	return EstimateMissesCtx(context.Background(), np, cfg, opt, plan, Budget{})
}

// EstimateMissesCtx is EstimateMisses under a context and a budget, with
// the same degradation and cancellation semantics as FindMissesCtx (the
// sampled tier degrades straight to the probabilistic one).
func EstimateMissesCtx(ctx context.Context, np *NProgram, cfg Config, opt AnalyzeOptions, plan Plan, b Budget) (rep *Report, err error) {
	defer cerr.RecoverTo(&err)
	a, err := cme.New(np, cfg, opt)
	if err != nil {
		return nil, err
	}
	return a.EstimateMissesCtx(ctx, b, plan)
}

// Observability types (see internal/obs): a collector gathers hierarchical
// spans, registry metrics and throttled progress events for one run; attach
// it to the context passed into any *Ctx entry point and every pipeline
// stage it crosses records itself. All entry points are nil-safe, so code
// paths without a collector pay (almost) nothing.
type (
	// ObsCollector gathers spans, metrics and progress for one run.
	ObsCollector = obs.Collector
	// ObsEvent is one throttled progress event.
	ObsEvent = obs.Event
	// RunReport is the exportable JSON report of one observed run
	// (schema "cachette/run-report/v1").
	RunReport = obs.RunReport
	// RunProvenance summarises a Report for the run report.
	RunProvenance = obs.Provenance
	// CandidateProvenance summarises one sweep candidate for the run report.
	CandidateProvenance = obs.CandidateProvenance
)

// NewObsCollector returns a collector rooted at name, recording into the
// process-wide metrics registry.
func NewObsCollector(name string) *ObsCollector { return obs.New(name) }

// WithCollector attaches a collector to a context; the *Ctx entry points
// record spans, metrics and progress into it.
func WithCollector(ctx context.Context, c *ObsCollector) context.Context {
	return obs.NewContext(ctx, c)
}

// CollectorFrom returns the collector attached to ctx, or nil.
func CollectorFrom(ctx context.Context) *ObsCollector { return obs.FromContext(ctx) }

// ValidateRunReport decodes and checks a serialized run report against the
// documented schema ("cachette/run-report/v1").
func ValidateRunReport(blob []byte) (*RunReport, error) { return obs.ValidateRunReport(blob) }

// BatchError reports per-candidate failures of SolveBatch: the batch keeps
// solving the remaining candidates and the failed indices map to their
// errors (their reports stay nil).
type BatchError = cme.BatchError

// Batch design-space types (see internal/cme: the geometry-invariant
// pipeline split and the batch solver).
type (
	// PreparedProgram is the geometry-invariant stage of the pipeline:
	// everything about a normalised program that does not depend on cache
	// geometry or layout, shareable across a whole design-space sweep.
	PreparedProgram = cme.Prepared
	// BatchCandidate is one (cache geometry, layout) point of a sweep.
	BatchCandidate = cme.Candidate
	// BatchOptions tunes SolveBatch.
	BatchOptions = cme.BatchOptions
	// ResultCache is the content-addressed, LRU-bounded store of
	// per-reference results shared across SolveBatch calls.
	ResultCache = cme.ResultCache
	// ResultCacheStats are the result cache's counters.
	ResultCacheStats = cme.CacheStats
)

// NewResultCache returns a result cache bounded to capacity entries
// (capacity <= 0 selects a generous default).
func NewResultCache(capacity int) *ResultCache { return cme.NewResultCache(capacity) }

// PrepareAnalysis builds the geometry-invariant analysis stage of a
// prepared (laid-out) program once, for use with SolveBatch. The layout in
// effect becomes the batch baseline.
func PrepareAnalysis(np *NProgram, opt AnalyzeOptions) (p *PreparedProgram, err error) {
	defer cerr.RecoverTo(&err)
	return cme.Prepare(np, opt)
}

// SolveBatch evaluates many (geometry, layout) candidates against one
// prepared program, returning one Report per candidate (index-aligned).
// Exact-tier results are bit-identical to per-candidate FindMisses; sampled
// results (BatchOptions.Plan set) are bit-identical to EstimateMisses under
// the same seed. A candidate that fails (invalid config, layout error)
// leaves its report nil and is recorded in the returned *BatchError while
// the rest of the batch still solves; cancellation and NoFallback budget
// exhaustion abort the whole batch instead.
func SolveBatch(ctx context.Context, p *PreparedProgram, cands []BatchCandidate, opt BatchOptions) (reps []*Report, err error) {
	defer cerr.RecoverTo(&err)
	return p.SolveBatch(ctx, cands, opt)
}

// SearchConfigs sweeps cache geometries against one program via SolveBatch
// and returns the candidates sorted by predicted miss ratio, best first. A
// nil plan solves exactly.
func SearchConfigs(ctx context.Context, build func() *Program, cfgs []Config, opt AnalyzeOptions, plan *Plan) (cs []Choice, err error) {
	defer cerr.RecoverTo(&err)
	return advisor.SearchConfigs(ctx, build, cfgs, opt, plan)
}

// Simulate replays the program through the exact LRU simulator.
func Simulate(np *NProgram, cfg Config) *SimResult { return trace.Simulate(np, cfg) }

// SimulateCtx is Simulate under a context and a budget (Budget.MaxPoints
// caps simulated accesses). The simulator is the validation baseline, so
// there is no cheaper tier to degrade to: an interrupted replay returns
// the truncated prefix counts, marked Truncated, together with
// ErrCanceled or ErrBudgetExceeded.
func SimulateCtx(ctx context.Context, np *NProgram, cfg Config, b Budget) (res *SimResult, err error) {
	defer cerr.RecoverTo(&err)
	return trace.SimulateCtx(ctx, np, cfg, b)
}

// EstimateProbabilistic runs the Fraguela-style probabilistic baseline
// (Table 7).
func EstimateProbabilistic(np *NProgram, cfg Config, opt ProbOptions) (*ProbReport, error) {
	return EstimateProbabilisticCtx(context.Background(), np, cfg, opt, Budget{})
}

// EstimateProbabilisticCtx is EstimateProbabilistic under a context and a
// budget; each reference costs MembershipSamples points. On interruption
// the partial report covers the references estimated so far.
func EstimateProbabilisticCtx(ctx context.Context, np *NProgram, cfg Config, opt ProbOptions, b Budget) (rep *ProbReport, err error) {
	defer cerr.RecoverTo(&err)
	return prob.EstimateCtx(ctx, np, cfg, opt, b)
}

// Diagnosis types (CME-driven diagnosis, internal/advisor).
type (
	// Diagnosis attributes replacement misses to interfering arrays.
	Diagnosis = advisor.Diagnosis
	// Interference is one victim/interferer cell of the matrix.
	Interference = advisor.Interference
	// Choice is one evaluated transformation candidate.
	Choice = advisor.Choice
)

// Diagnose samples the program and attributes every replacement miss to
// the arrays that supplied the evicting contentions.
func Diagnose(np *NProgram, cfg Config, opt AnalyzeOptions, plan Plan) (*Diagnosis, error) {
	return DiagnoseCtx(context.Background(), np, cfg, opt, plan, Budget{})
}

// DiagnoseCtx is Diagnose under a context and a budget. Diagnosis needs
// pointwise attribution, so there is no cheaper tier: an interrupted run
// returns the partial diagnosis together with ErrCanceled or
// ErrBudgetExceeded.
func DiagnoseCtx(ctx context.Context, np *NProgram, cfg Config, opt AnalyzeOptions, plan Plan, b Budget) (d *Diagnosis, err error) {
	defer cerr.RecoverTo(&err)
	return advisor.DiagnoseCtx(ctx, np, cfg, opt, plan, b)
}

// SearchPadding ranks inter-array paddings by predicted miss ratio.
func SearchPadding(build func() *Program, array string, pads []int64, cfg Config, opt AnalyzeOptions, plan Plan) ([]Choice, error) {
	return SearchPaddingCtx(context.Background(), build, array, pads, cfg, opt, plan, Budget{})
}

// SearchPaddingCtx is SearchPadding under a context and a budget: the
// deadline spans the whole search, the point/scan caps apply per
// candidate, and an interrupted search returns the candidates evaluated
// so far (sorted) together with the interruption error.
func SearchPaddingCtx(ctx context.Context, build func() *Program, array string, pads []int64, cfg Config, opt AnalyzeOptions, plan Plan, b Budget) (cs []Choice, err error) {
	defer cerr.RecoverTo(&err)
	return advisor.SearchPaddingCtx(ctx, build, array, pads, cfg, opt, plan, b)
}

// SearchParameter ranks a parameterised program family (tile sizes, loop
// orders, ...) by predicted miss ratio.
func SearchParameter(build func(param int64) *Program, params []int64, cfg Config, opt AnalyzeOptions, plan Plan) ([]Choice, error) {
	return SearchParameterCtx(context.Background(), build, params, cfg, opt, plan, Budget{})
}

// SearchParameterCtx is SearchParameter under a context and a budget,
// with the same semantics as SearchPaddingCtx.
func SearchParameterCtx(ctx context.Context, build func(param int64) *Program, params []int64, cfg Config, opt AnalyzeOptions, plan Plan, b Budget) (cs []Choice, err error) {
	defer cerr.RecoverTo(&err)
	return advisor.SearchParameterCtx(ctx, build, params, cfg, opt, plan, b)
}

// ParseFortran parses FORTRAN-subset source (the paper's program model)
// into a Program. consts supplies compile-time values for named sizes,
// the way the paper fixes READ-initialised variables from the reference
// input. Malformed source yields a positioned *ParseError, never a panic.
func ParseFortran(src string, consts map[string]int64) (p *Program, err error) {
	defer cerr.RecoverTo(&err)
	return fparse.Parse(src, consts)
}

// ParseOptions tunes ParseFortranOptions.
type ParseOptions = fparse.Options

// ParseFortranOptions is ParseFortran with IF-GOTO loop conversion: the
// paper converts Swim's and Tomcatv's outer IF-GOTO iteration into DO
// statements with trip counts fixed from the reference input
// (Options.GotoTrips).
func ParseFortranOptions(src string, opt ParseOptions) (p *Program, err error) {
	defer cerr.RecoverTo(&err)
	return fparse.ParseOptions(src, opt)
}

// Built-in workloads: the paper's kernels (Fig. 8) and whole-program
// models (Table 5).
var (
	// KernelHydro is Livermore kernel 18 (JN = KN sizes are separate).
	KernelHydro = kernels.Hydro
	// KernelMGRID is the 3-D interpolation nest of MGRID.
	KernelMGRID = kernels.MGRID
	// KernelMMT is the blocked A·Bᵀ multiply with a transposed copy block.
	KernelMMT = kernels.MMT
	// ProgramTomcatv is the SPECfp95 Tomcatv model.
	ProgramTomcatv = kernels.Tomcatv
	// ProgramSwim is the SPECfp95 Swim model.
	ProgramSwim = kernels.Swim
	// ProgramApplu is the SPECfp95 Applu model.
	ProgramApplu = kernels.Applu
	// ProgramVCycle is a 3-level multigrid V-cycle exercising renameable
	// and sequence-associated call arguments.
	ProgramVCycle = kernels.VCycle
)
