// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md and component
// microbenchmarks. Each TableN benchmark runs the corresponding
// experiment at the "quick" scale and reports the reproduction-quality
// metrics (absolute errors in percentage points, speedups) via
// b.ReportMetric, so `go test -bench .` doubles as the reproduction
// harness. Use cmd/cachette `experiments -scale medium|paper` for the
// paper-sized runs.
package cachemodel_test

import (
	"fmt"
	"testing"

	"cachemodel"
	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/experiments"
	"cachemodel/internal/ir"
	"cachemodel/internal/kernels"
	"cachemodel/internal/normalize"
	"cachemodel/internal/poly"
	"cachemodel/internal/reuse"
	"cachemodel/internal/sampling"
	"cachemodel/internal/trace"
)

func prepared(b *testing.B, p *cachemodel.Program) *cachemodel.NProgram {
	b.Helper()
	np, _, err := cachemodel.Prepare(p, cachemodel.PrepareOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return np
}

// BenchmarkTable2CallStats regenerates Table 2: the actual-parameter
// classifier over the synthetic twenty-program corpus.
func BenchmarkTable2CallStats(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunTable2()
	}
	var tp, tr, tn, tc, ta int
	for _, r := range rows {
		tp += r.PAble
		tr += r.RAble
		tn += r.NAble
		tc += r.Calls
		ta += r.AAble
	}
	tot := float64(tp + tr + tn)
	b.ReportMetric(100*float64(tp)/tot, "pable_%")
	b.ReportMetric(100*float64(tn)/tot, "nable_%")
	b.ReportMetric(100*float64(ta)/float64(tc), "aable_%") // paper: 86.44
}

// BenchmarkTable3FindMisses regenerates Table 3 per kernel: exact
// FindMisses vs the simulator. The abs_err metric must be 0 for Hydro and
// MGRID (the paper's result) and small positive for MMT.
func BenchmarkTable3FindMisses(b *testing.B) {
	var rows []experiments.Table3Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTable3(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	report := func(name string) func(b *testing.B) {
		return func(b *testing.B) {
			var maxErr, secs float64
			for _, r := range rows {
				if r.Program == name {
					if r.AbsErr > maxErr {
						maxErr = r.AbsErr
					}
					secs += r.Secs
				}
			}
			b.ReportMetric(maxErr, "abs_err_pp")
			b.ReportMetric(secs, "find_secs")
		}
	}
	b.Run("Hydro", report("Hydro"))
	b.Run("MGRID", report("MGRID"))
	b.Run("MMT", report("MMT"))
}

// BenchmarkTable4EstimateMisses regenerates Table 4: sampled estimation on
// the kernels at (95%, 0.05).
func BenchmarkTable4EstimateMisses(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTable4(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	var maxErr float64
	for _, r := range rows {
		if r.AbsErr > maxErr {
			maxErr = r.AbsErr
		}
	}
	b.ReportMetric(maxErr, "max_abs_err_pp") // paper: < 0.4
}

// BenchmarkTable5ProgramStats regenerates Table 5.
func BenchmarkTable5ProgramStats(b *testing.B) {
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTable5(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Program == "Applu" {
			b.ReportMetric(float64(r.Subroutines), "applu_subroutines") // paper: 16
			b.ReportMetric(float64(r.NRefs), "applu_refs")              // paper: 2565
		}
	}
}

// BenchmarkTable6WholePrograms regenerates Table 6: EstimateMisses vs the
// simulator on Tomcatv, Swim and Applu.
func BenchmarkTable6WholePrograms(b *testing.B) {
	var rows []experiments.Table6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTable6(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
	}
	var maxErr float64
	for _, r := range rows {
		if r.AbsErr > maxErr {
			maxErr = r.AbsErr
		}
	}
	b.ReportMetric(maxErr, "max_abs_err_pp") // paper: <= 0.84
}

// BenchmarkTable7Probabilistic regenerates four representative Table 7
// rows (shrink 8): the probabilistic baseline's error must dominate
// EstimateMisses'.
func BenchmarkTable7Probabilistic(b *testing.B) {
	configs := []experiments.Table7Config{
		experiments.Table7Configs[0],  // 200/100/100 Cs16 Ls8 k2
		experiments.Table7Configs[4],  // 200/200/100 Cs128 Ls32 k2 (the blow-up row)
		experiments.Table7Configs[5],  // 200/50/200 Cs16 Ls4 k1
		experiments.Table7Configs[10], // 400/200/100 Cs32 Ls8 k1
	}
	var rows []experiments.Table7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTable7(8, configs)
		if err != nil {
			b.Fatal(err)
		}
	}
	var sumP, sumE float64
	for _, r := range rows {
		sumP += r.DeltaP
		sumE += r.DeltaE
	}
	b.ReportMetric(sumP/float64(len(rows)), "mean_deltaP_pp")
	b.ReportMetric(sumE/float64(len(rows)), "mean_deltaE_pp")
}

// BenchmarkFigure6Solvers compares the two algorithms of Figure 6 on the
// same program and cache: FindMisses (every point) vs EstimateMisses
// (sampled), the core cost trade-off of the paper.
func BenchmarkFigure6Solvers(b *testing.B) {
	np := prepared(b, cachemodel.KernelHydro(32, 32))
	cfg := cachemodel.Default32K(2)
	b.Run("FindMisses", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cachemodel.FindMisses(np, cfg, cachemodel.AnalyzeOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EstimateMisses", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_, err := cachemodel.EstimateMisses(np, cfg, cachemodel.AnalyzeOptions{}, cachemodel.Plan{C: 0.95, W: 0.05})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Simulator", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cachemodel.Simulate(np, cfg)
		}
	})
}

// BenchmarkParallelScaling measures the tile-parallel exact solver and the
// set-sharded simulator on Hydro across worker counts, against the
// sequential seed paths (one worker, memoization off). The CI bench smoke
// job gates on these numbers: with GOMAXPROCS >= 4 the parallel solver
// must not be slower than the sequential one.
func BenchmarkParallelScaling(b *testing.B) {
	np := prepared(b, cachemodel.KernelHydro(32, 32))
	cfg := cachemodel.Default32K(2)
	find := func(opt cachemodel.AnalyzeOptions) func(b *testing.B) {
		return func(b *testing.B) {
			var points int64
			for i := 0; i < b.N; i++ {
				rep, err := cachemodel.FindMisses(np, cfg, opt)
				if err != nil {
					b.Fatal(err)
				}
				points = rep.TotalAccesses()
			}
			b.ReportMetric(float64(points), "points")
		}
	}
	b.Run("FindMisses/seq", find(cachemodel.AnalyzeOptions{Workers: 1, NoMemo: true}))
	b.Run("FindMisses/memo", find(cachemodel.AnalyzeOptions{Workers: 1}))
	for _, w := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("FindMisses/w%d", w), find(cachemodel.AnalyzeOptions{Workers: w}))
	}
	b.Run("Simulate/seq", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cachemodel.Simulate(np, cfg)
		}
	})
	for _, w := range []int{2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("Simulate/sharded_w%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				trace.SimulateSharded(np, cfg, w)
			}
		})
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §"Key design decisions").

func ablationError(b *testing.B, opt cachemodel.AnalyzeOptions) float64 {
	b.Helper()
	np := prepared(b, cachemodel.KernelHydro(24, 24))
	cfg := cache.Config{SizeBytes: 4 * 1024, LineBytes: 32, Assoc: 2}
	rep, err := cachemodel.FindMisses(np, cfg, opt)
	if err != nil {
		b.Fatal(err)
	}
	sim := cachemodel.Simulate(np, cfg)
	d := rep.MissRatio() - sim.MissRatio()
	if d < 0 {
		d = -d
	}
	return d
}

// BenchmarkAblationSpatialVectors measures what each class of reuse vector
// buys: dropping spatial, cross-column or group vectors must only increase
// the (over-)estimation error, never make it negative.
func BenchmarkAblationSpatialVectors(b *testing.B) {
	variants := []struct {
		name string
		opt  reuse.Options
	}{
		{"full", reuse.Options{}},
		{"no-cross-column", reuse.Options{NoCrossColumn: true}},
		{"no-spatial", reuse.Options{NoSpatial: true}},
		{"no-group", reuse.Options{NoGroup: true}},
		{"self-temporal-only", reuse.Options{NoSpatial: true, NoGroup: true}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				e = ablationError(b, cachemodel.AnalyzeOptions{Reuse: v.opt})
			}
			b.ReportMetric(e, "abs_err_pp")
		})
	}
}

// BenchmarkAblationPaperLRU compares the paper's verbatim replacement test
// with the exact-LRU refinement the implementation defaults to.
func BenchmarkAblationPaperLRU(b *testing.B) {
	for _, v := range []struct {
		name string
		opt  cachemodel.AnalyzeOptions
	}{
		{"exact-lru", cachemodel.AnalyzeOptions{}},
		{"paper-lru", cachemodel.AnalyzeOptions{PaperLRU: true}},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				e = ablationError(b, v.opt)
			}
			b.ReportMetric(e, "abs_err_pp")
		})
	}
}

// BenchmarkAblationSamplingPlan sweeps the confidence interval width: the
// cost-accuracy dial of EstimateMisses.
func BenchmarkAblationSamplingPlan(b *testing.B) {
	np := prepared(b, cachemodel.KernelMMT(24, 12, 12))
	cfg := cache.Config{SizeBytes: 4 * 1024, LineBytes: 32, Assoc: 2}
	sim := cachemodel.Simulate(np, cfg)
	for _, w := range []float64{0.02, 0.05, 0.10, 0.15} {
		w := w
		b.Run(planName(w), func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				rep, err := cachemodel.EstimateMisses(np, cfg, cachemodel.AnalyzeOptions{},
					cachemodel.Plan{C: 0.95, W: w})
				if err != nil {
					b.Fatal(err)
				}
				e = rep.MissRatio() - sim.MissRatio()
				if e < 0 {
					e = -e
				}
			}
			b.ReportMetric(e, "abs_err_pp")
			b.ReportMetric(float64((sampling.Plan{C: 0.95, W: w}).Size()), "samples_per_ref")
		})
	}
}

func planName(w float64) string {
	switch w {
	case 0.02:
		return "w=0.02"
	case 0.05:
		return "w=0.05"
	case 0.10:
		return "w=0.10"
	default:
		return "w=0.15"
	}
}

// ---------------------------------------------------------------------
// Component microbenchmarks.

// BenchmarkSimulatorAccess measures raw simulator throughput.
func BenchmarkSimulatorAccess(b *testing.B) {
	sim := cache.NewSimulator(cache.Default32K(4))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sim.Access(int64(i*8) % (1 << 20))
	}
}

// BenchmarkTraceReplay measures end-to-end trace generation + simulation.
func BenchmarkTraceReplay(b *testing.B) {
	np := prepared(b, cachemodel.KernelHydro(32, 32))
	cfg := cache.Default32K(2)
	b.ResetTimer()
	var accesses int64
	for i := 0; i < b.N; i++ {
		res := trace.Simulate(np, cfg)
		accesses = res.Accesses
	}
	b.ReportMetric(float64(accesses), "accesses")
}

// BenchmarkNormalize measures the §3.1 pre-processing on the largest
// program model.
func BenchmarkNormalize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := kernels.Applu(8, 1)
		flat, _, err := cachemodel.Prepare(p, cachemodel.PrepareOptions{})
		if err != nil {
			b.Fatal(err)
		}
		_ = flat
	}
}

// BenchmarkReuseGeneration measures reuse-vector derivation.
func BenchmarkReuseGeneration(b *testing.B) {
	np := prepared(b, cachemodel.KernelHydro(32, 32))
	cfg := cache.Default32K(2)
	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		vecs := reuse.Generate(np, cfg, reuse.Options{})
		total = 0
		for _, vs := range vecs {
			total += len(vs)
		}
	}
	b.ReportMetric(float64(total), "vectors")
}

// BenchmarkClassify measures single-access classification (the inner loop
// of both solvers).
func BenchmarkClassify(b *testing.B) {
	np := prepared(b, cachemodel.KernelHydro(32, 32))
	cfg := cache.Default32K(2)
	a, err := cme.New(np, cfg, cme.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ref := np.Refs[len(np.Refs)/2]
	idx := []int64{16, 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Classify(ref, idx)
	}
}

// BenchmarkVolume measures RIS volume computation on a triangular space.
func BenchmarkVolume(b *testing.B) {
	sub := buildTriangular(200)
	np, err := normalize.Normalize(sub)
	if err != nil {
		b.Fatal(err)
	}
	sp := poly.FromStmt(np.Stmts[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh space each round to defeat the cache.
		s2 := poly.New(sp.Bounds, sp.Guards)
		_ = s2.Volume()
	}
}

func buildTriangular(n int64) *ir.Subroutine {
	bb := ir.NewSub("tri")
	A := bb.Real8("A", n, n)
	bb.Do("I", ir.Con(1), ir.Con(n)).
		Do("J", ir.Var("I"), ir.Con(n)).
		Assign("S1", ir.R(A, ir.Var("J"), ir.Var("I"))).
		End().End()
	return bb.Build()
}

// BenchmarkParseFortran measures the front end on the Hydro listing.
func BenchmarkParseFortran(b *testing.B) {
	src := hydroListing()
	for i := 0; i < b.N; i++ {
		if _, err := cachemodel.ParseFortran(src, map[string]int64{"JN": 20, "KN": 20, "JN1": 21, "KN1": 21}); err != nil {
			b.Fatal(err)
		}
	}
}

func hydroListing() string {
	return `
      PROGRAM HYDRO
      REAL*8 ZA(JN1,KN1), ZP(JN1,KN1), ZQ(JN1,KN1), ZR(JN1,KN1)
      REAL*8 ZM(JN1,KN1), ZB(JN1,KN1), ZU(JN1,KN1), ZV(JN1,KN1)
      REAL*8 ZZ(JN1,KN1)
      DO K = 2, KN
        DO J = 2, JN
          ZA(J,K) = (ZP(J-1,K+1)+ZQ(J-1,K+1)-ZP(J-1,K)-ZQ(J-1,K))
     &      *(ZR(J,K)+ZR(J-1,K))/(ZM(J-1,K)+ZM(J-1,K+1))
          ZB(J,K) = (ZP(J-1,K)+ZQ(J-1,K)-ZP(J,K)-ZQ(J,K))
     &      *(ZR(J,K)+ZR(J,K-1))/(ZM(J,K)+ZM(J-1,K))
        ENDDO
      ENDDO
      END
`
}

// BenchmarkAbstractInlining measures §3.6 on Applu's call graph.
func BenchmarkAbstractInlining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := kernels.Applu(8, 1)
		st := cachemodel.ClassifyCalls(p)
		if st.Calls == 0 {
			b.Fatal("no calls")
		}
	}
}

// BenchmarkExtensionNonUniform measures the §8 future-work extension:
// resolving non-uniformly generated reuse with uniquely solvable
// producers removes the overestimation on a transpose-then-read pattern
// (the paper's method finds no reuse vector between B(J,I) and B(I,J)).
func BenchmarkExtensionNonUniform(b *testing.B) {
	build := func() *cachemodel.NProgram {
		sb := cachemodel.NewSub("TR")
		A := sb.Real8("A", 24, 24)
		B := sb.Real8("B", 24, 24)
		i, j := cachemodel.Var("I"), cachemodel.Var("J")
		sb.Do("I", cachemodel.Con(1), cachemodel.Con(24)).
			Do("J", cachemodel.Con(1), cachemodel.Con(24)).
			Assign("S1", cachemodel.R(B, j, i), cachemodel.R(A, i, j)).
			End().End().
			Do("I", cachemodel.Con(1), cachemodel.Con(24)).
			Do("J", cachemodel.Con(1), cachemodel.Con(24)).
			Assign("S2", nil, cachemodel.R(B, i, j)).
			End().End()
		p := cachemodel.NewProgram("TR")
		p.Add(sb.Build())
		np, _, err := cachemodel.Prepare(p, cachemodel.PrepareOptions{})
		if err != nil {
			b.Fatal(err)
		}
		return np
	}
	cfg := cache.Config{SizeBytes: 2048, LineBytes: 32, Assoc: 2}
	for _, v := range []struct {
		name string
		opt  cachemodel.AnalyzeOptions
	}{
		{"paper", cachemodel.AnalyzeOptions{}},
		{"non-uniform", cachemodel.AnalyzeOptions{Reuse: reuse.Options{NonUniform: true}}},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				np := build()
				rep, err := cachemodel.FindMisses(np, cfg, v.opt)
				if err != nil {
					b.Fatal(err)
				}
				sim := cachemodel.Simulate(np, cfg)
				e = rep.MissRatio() - sim.MissRatio()
				if e < 0 {
					e = -e
				}
			}
			b.ReportMetric(e, "abs_err_pp")
		})
	}
}
